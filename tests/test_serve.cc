/** @file Tests for the `bsyn serve` control plane: the job-spool
 *  protocol (atomic submit/claim/finish, exactly-one-winner claim
 *  races), the worker loop (round-trip correctness against a direct
 *  Session run, failing-workload isolation, graceful drain on a stop
 *  request), and warm-cache job execution (a re-submitted job
 *  recomputes nothing and reproduces identical bytes). */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <thread>
#include <sys/wait.h>
#include <unistd.h>

#include "pipeline/pipeline.hh"
#include "pipeline/session.hh"
#include "serve/spool.hh"
#include "serve/worker.hh"
#include "support/error.hh"
#include "support/string_util.hh"
#include "workloads/suite.hh"

namespace fs = std::filesystem;

namespace bsyn
{
namespace
{

/** Fresh scratch directory under the gtest temp root, wiped on exit. */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &tag)
        : path_(std::string(::testing::TempDir()) + "bsyn_" + tag + "_" +
                std::to_string(::getpid()))
    {
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~ScratchDir()
    {
        std::error_code ec;
        fs::remove_all(path_, ec);
    }
    const std::string &str() const { return path_; }
    std::string sub(const std::string &name) const
    {
        return path_ + "/" + name;
    }

  private:
    std::string path_;
};

serve::Job
synthJob(const std::string &id, const std::string &workload)
{
    serve::Job job;
    job.id = id;
    job.kind = "synth";
    job.workload = workload;
    job.targetInstr = 30000;
    return job;
}

size_t
entriesIn(const std::string &dir)
{
    size_t n = 0;
    for (const auto &e : fs::directory_iterator(dir)) {
        (void)e;
        ++n;
    }
    return n;
}

TEST(Spool, ValidatesJobsAndIds)
{
    EXPECT_TRUE(serve::validJobId("synth-crc32-small_1.2"));
    EXPECT_FALSE(serve::validJobId(""));
    EXPECT_FALSE(serve::validJobId("a/b"));
    EXPECT_FALSE(serve::validJobId("a b"));
    EXPECT_FALSE(serve::validJobId(std::string(201, 'x')));

    ScratchDir dir("spool_validate");
    serve::Spool spool(dir.sub("spool"));
    EXPECT_THROW(spool.submit(synthJob("bad id", "crc32/small")),
                 FatalError);
    serve::Job wrongKind = synthJob("ok", "crc32/small");
    wrongKind.kind = "frobnicate";
    EXPECT_THROW(spool.submit(wrongKind), FatalError);

    spool.submit(synthJob("ok", "crc32/small"));
    // Duplicate ids are rejected while the first is still anywhere in
    // the spool.
    EXPECT_THROW(spool.submit(synthJob("ok", "crc32/small")),
                 FatalError);
    EXPECT_EQ(spool.freeId("ok"), "ok-2");
    EXPECT_EQ(spool.pending(), std::vector<std::string>{"ok"});
}

TEST(Spool, JobJsonRoundTrips)
{
    serve::Job job = synthJob("rt", "pointer_chase/nodes=64,seed=3");
    job.seed = 1234;
    job.timing = true;
    serve::Job back = serve::Job::fromJson(job.toJson());
    EXPECT_EQ(back.id, job.id);
    EXPECT_EQ(back.kind, job.kind);
    EXPECT_EQ(back.workload, job.workload);
    EXPECT_EQ(back.seed, job.seed);
    EXPECT_EQ(back.targetInstr, job.targetInstr);
    EXPECT_EQ(back.timing, job.timing);
}

TEST(Worker, JobRoundTripMatchesDirectSessionRun)
{
    ScratchDir dir("serve_roundtrip");
    serve::Spool spool(dir.sub("spool"));
    spool.submit(synthJob("crc", "crc32/small"));
    serve::Job prof = synthJob("prof", "bitcount/small");
    prof.kind = "profile";
    spool.submit(prof);

    serve::WorkerOptions wo;
    wo.spoolDir = dir.sub("spool");
    wo.drain = true;
    wo.threads = 1;
    serve::Worker worker(wo);
    auto stats = worker.run();
    EXPECT_EQ(stats.processed, 2u);
    EXPECT_EQ(stats.succeeded, 2u);
    EXPECT_EQ(stats.failed, 0u);

    // The synth job's clone must be the exact bytes a direct session
    // run produces with the suite's per-workload seed derivation.
    auto w = workloads::findWorkload("crc32/small");
    pipeline::Session session;
    synth::SynthesisOptions opts = pipeline::defaultSynthesisOptions();
    opts.targetInstructions = 30000;
    opts.seed = pipeline::deriveWorkloadSeed(opts.seed, w.name());
    auto run = session.process(w, opts);
    EXPECT_EQ(readFile(spool.outPath("crc", ".c")), run.synthetic.cSource);
    EXPECT_EQ(readFile(spool.outPath("crc", ".profile.json")),
              run.profile.serialize());

    // Terminal statuses landed and the claim queue is empty.
    Json status;
    ASSERT_TRUE(spool.result("crc", status));
    EXPECT_TRUE(status.get("ok").asBool());
    EXPECT_EQ(status.get("schema").asString(), "bsyn.result.v1");
    ASSERT_TRUE(spool.result("prof", status));
    EXPECT_TRUE(status.get("ok").asBool());
    EXPECT_EQ(entriesIn(dir.sub("spool") + "/claimed"), 0u);
    EXPECT_EQ(entriesIn(dir.sub("spool") + "/new"), 0u);
}

TEST(Worker, DuplicateClaimRaceHasOneWinnerPerJob)
{
    ScratchDir dir("serve_race");
    serve::Spool spool(dir.sub("spool"));
    const size_t kJobs = 6;
    for (size_t i = 0; i < kJobs; ++i)
        spool.submit(synthJob("job" + std::to_string(i),
                              i % 2 ? "crc32/small" : "bitcount/small"));

    // Two workers drain one spool concurrently: every job must be
    // finished exactly once, however the claim races fall.
    serve::WorkerOptions wo;
    wo.spoolDir = dir.sub("spool");
    wo.cacheDir = dir.sub("cache");
    wo.drain = true;
    wo.threads = 1;
    serve::Worker a(wo), b(wo);
    serve::WorkerStats sa, sb;
    std::thread ta([&] { sa = a.run(); });
    std::thread tb([&] { sb = b.run(); });
    ta.join();
    tb.join();

    EXPECT_EQ(sa.processed + sb.processed, kJobs);
    EXPECT_EQ(sa.succeeded + sb.succeeded, kJobs);
    EXPECT_EQ(sa.failed + sb.failed, 0u);
    EXPECT_EQ(spool.finished().size(), kJobs);
    EXPECT_EQ(entriesIn(dir.sub("spool") + "/new"), 0u);
    EXPECT_EQ(entriesIn(dir.sub("spool") + "/claimed"), 0u);
    for (size_t i = 0; i < kJobs; ++i) {
        Json status;
        ASSERT_TRUE(spool.result("job" + std::to_string(i), status));
        EXPECT_TRUE(status.get("ok").asBool());
    }
}

TEST(Worker, FailingWorkloadIsIsolated)
{
    ScratchDir dir("serve_failing");
    serve::Spool spool(dir.sub("spool"));
    spool.submit(synthJob("good1", "crc32/small"));
    spool.submit(synthJob("bad", "broken/nope"));
    spool.submit(synthJob("good2", "bitcount/small"));

    serve::WorkerOptions wo;
    wo.spoolDir = dir.sub("spool");
    wo.drain = true;
    wo.threads = 1;
    serve::Worker worker(wo);
    auto stats = worker.run();

    // The worker survived the bad job and still served the good ones.
    EXPECT_EQ(stats.processed, 3u);
    EXPECT_EQ(stats.succeeded, 2u);
    EXPECT_EQ(stats.failed, 1u);

    Json status;
    ASSERT_TRUE(spool.result("bad", status));
    EXPECT_FALSE(status.get("ok").asBool());
    EXPECT_NE(status.get("error").asString().find("broken/nope"),
              std::string::npos);
    ASSERT_TRUE(spool.result("good1", status));
    EXPECT_TRUE(status.get("ok").asBool());
    ASSERT_TRUE(spool.result("good2", status));
    EXPECT_TRUE(status.get("ok").asBool());
}

TEST(Worker, StopRequestDrainsGracefully)
{
    ScratchDir dir("serve_stop");
    serve::Spool spool(dir.sub("spool"));
    spool.submit(synthJob("one", "crc32/small"));

    // Non-drain worker: would poll forever without a stop request.
    serve::WorkerOptions wo;
    wo.spoolDir = dir.sub("spool");
    wo.pollMs = 5;
    wo.threads = 1;
    serve::Worker worker(wo);
    std::thread t([&] { worker.run(); });

    // Wait for the first job to finish, then stop via the flag file —
    // the cross-machine path a signal can't reach.
    while (spool.finished().size() < 1)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    spool.requestStop();
    t.join();

    EXPECT_EQ(entriesIn(dir.sub("spool") + "/claimed"), 0u);
    Json status;
    ASSERT_TRUE(spool.result("one", status));
    EXPECT_TRUE(status.get("ok").asBool());

    // A fresh worker on the same spool sees the flag and exits
    // immediately without claiming anything.
    spool.submit(synthJob("two", "crc32/small"));
    serve::Worker idle(wo);
    auto stats = idle.run();
    EXPECT_EQ(stats.processed, 0u);
    EXPECT_EQ(spool.pending(), std::vector<std::string>{"two"});

    // Clearing the flag re-arms the spool; requestStop() on the worker
    // object itself also drains (the CLI signal path).
    spool.clearStop();
    serve::Worker again(wo);
    std::thread t2([&] { again.run(); });
    while (spool.finished().size() < 2)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    again.requestStop();
    t2.join();
    Json second;
    ASSERT_TRUE(spool.result("two", second));
    EXPECT_TRUE(second.get("ok").asBool());
}

TEST(Worker, WarmResubmitRecomputesNothing)
{
    ScratchDir dir("serve_warm");
    serve::Spool spool(dir.sub("spool"));
    spool.submit(synthJob("cold", "crc32/small"));

    serve::WorkerOptions wo;
    wo.spoolDir = dir.sub("spool");
    wo.cacheDir = dir.sub("cache");
    wo.drain = true;
    wo.threads = 1;
    {
        serve::Worker worker(wo);
        worker.run();
    }
    Json status;
    ASSERT_TRUE(spool.result("cold", status));
    EXPECT_FALSE(status.get("profileCached").asBool());
    EXPECT_FALSE(status.get("synthCached").asBool());

    // Same job, fresh worker process, warm shared cache: both stages
    // must come from the cache and reproduce identical bytes.
    spool.submit(synthJob("warm", "crc32/small"));
    {
        serve::Worker worker(wo);
        auto stats = worker.run();
        EXPECT_EQ(stats.processed, 1u);
        auto cs = worker.session().cacheStats();
        EXPECT_EQ(cs.profileMisses, 0u);
        EXPECT_EQ(cs.synthMisses, 0u);
    }
    ASSERT_TRUE(spool.result("warm", status));
    EXPECT_TRUE(status.get("ok").asBool());
    EXPECT_TRUE(status.get("profileCached").asBool());
    EXPECT_TRUE(status.get("synthCached").asBool());
    EXPECT_EQ(readFile(spool.outPath("warm", ".c")),
              readFile(spool.outPath("cold", ".c")));
    EXPECT_EQ(readFile(spool.outPath("warm", ".profile.json")),
              readFile(spool.outPath("cold", ".profile.json")));
}

TEST(Spool, StaleClaimRecoveryAfterWorkerCrash)
{
    ScratchDir dir("serve_stale");
    serve::Spool spool(dir.sub("spool"));
    spool.submit(synthJob("crash", "crc32/small"));

    // Backdate the queued job file: claim() must re-stamp the mtime,
    // so time a job spent waiting in new/ never counts as claim age.
    auto backdate =
        fs::file_time_type::clock::now() - std::chrono::hours(1);
    fs::last_write_time(spool.newPath("crash"), backdate);

    // A worker in a separate process claims the job and dies before
    // finishing it — kill -9 semantics, no destructors, no cleanup.
    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        serve::Spool child(dir.sub("spool"));
        ::_exit(child.claim("crash") ? 0 : 1);
    }
    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFEXITED(wstatus));
    ASSERT_EQ(WEXITSTATUS(wstatus), 0);

    // The job is stranded: not pending, not done, claimed forever.
    EXPECT_TRUE(spool.pending().empty());
    EXPECT_EQ(entriesIn(dir.sub("spool") + "/claimed"), 1u);
    Json none;
    EXPECT_FALSE(spool.result("crash", none));

    // The claim is fresh (re-stamped at claim time), so a lease scan
    // does not flag it yet...
    EXPECT_TRUE(spool.scanStale(5.0).empty());
    // ...but once the claim itself ages past the lease, it does.
    fs::last_write_time(spool.claimedPath("crash"), backdate);
    EXPECT_EQ(spool.scanStale(5.0), std::vector<std::string>{"crash"});

    // A reclaiming drain worker moves it back to new/ and serves it
    // to completion.
    serve::WorkerOptions wo;
    wo.spoolDir = dir.sub("spool");
    wo.drain = true;
    wo.threads = 1;
    wo.reclaimAfterS = 5.0;
    serve::Worker worker(wo);
    auto stats = worker.run();
    EXPECT_EQ(stats.reclaimed, 1u);
    EXPECT_EQ(stats.processed, 1u);
    EXPECT_EQ(stats.succeeded, 1u);
    Json status;
    ASSERT_TRUE(spool.result("crash", status));
    EXPECT_TRUE(status.get("ok").asBool());
    EXPECT_EQ(entriesIn(dir.sub("spool") + "/claimed"), 0u);

    // Reclaiming a claim that no longer exists is a clean no-op.
    EXPECT_FALSE(spool.reclaim("crash"));
}

TEST(Spool, WaitForResultFailsFastWhenNoResultCanArrive)
{
    ScratchDir dir("serve_wait");
    serve::Spool spool(dir.sub("spool"));
    Json status;

    auto t0 = std::chrono::steady_clock::now();

    // A job nowhere in the spool: vanished, immediately — not after
    // the full timeout.
    EXPECT_EQ(serve::waitForResult(spool, "ghost", status, 30.0, 1),
              serve::WaitOutcome::Vanished);

    // Stop flag set while the job sits unclaimed: no worker will ever
    // take it, so the wait reports that instead of burning 30s.
    spool.submit(synthJob("stuck", "crc32/small"));
    spool.requestStop();
    EXPECT_EQ(serve::waitForResult(spool, "stuck", status, 30.0, 1),
              serve::WaitOutcome::Stopped);
    EXPECT_LT(std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - t0)
                  .count(),
              10.0);

    // Without the flag the same wait times out normally...
    spool.clearStop();
    EXPECT_EQ(serve::waitForResult(spool, "stuck", status, 0.05, 1),
              serve::WaitOutcome::Timeout);

    // ...and a *claimed* job keeps the wait alive even under a stop
    // flag: its worker always finishes the job in flight.
    ASSERT_TRUE(spool.claim("stuck"));
    spool.requestStop();
    EXPECT_EQ(serve::waitForResult(spool, "stuck", status, 0.05, 1),
              serve::WaitOutcome::Timeout);

    // Publishing the status resolves the wait with the result.
    Json terminal = Json::object();
    terminal.set("ok", Json(true));
    spool.finish("stuck", terminal);
    EXPECT_EQ(serve::waitForResult(spool, "stuck", status, 1.0, 1),
              serve::WaitOutcome::Done);
    EXPECT_TRUE(status.get("ok").asBool());

    EXPECT_STREQ(serve::waitOutcomeName(serve::WaitOutcome::Done),
                 "done");
    EXPECT_STREQ(serve::waitOutcomeName(serve::WaitOutcome::Stopped),
                 "stopped");
}

TEST(Worker, RejectsBrokenPollConfiguration)
{
    ScratchDir dir("serve_pollcfg");
    serve::WorkerOptions wo;
    wo.spoolDir = dir.sub("spool");
    wo.threads = 1;
    wo.pollMs = 0;
    EXPECT_THROW({ serve::Worker w(wo); }, FatalError);
    wo.pollMs = 50;
    wo.reclaimAfterS = -1.0;
    EXPECT_THROW({ serve::Worker w(wo); }, FatalError);
}

TEST(Worker, DrainPublishesStatusAndMetricsArtifacts)
{
    ScratchDir dir("serve_status");
    serve::Spool spool(dir.sub("spool"));
    spool.submit(synthJob("good", "crc32/small"));
    spool.submit(synthJob("bad", "broken/nope"));

    serve::WorkerOptions wo;
    wo.spoolDir = dir.sub("spool");
    wo.drain = true;
    wo.threads = 1;
    serve::Worker worker(wo);
    auto stats = worker.run();

    // Graceful drain leaves a scrapeable status artifact whose counts
    // match the stats run() returned.
    Json status =
        Json::parse(readFile(dir.sub("spool") + "/worker_status.json"));
    EXPECT_EQ(status.get("schema").asString(), "bsyn.worker.v1");
    EXPECT_EQ(uint64_t(status.get("processed").asInt()), stats.processed);
    EXPECT_EQ(uint64_t(status.get("succeeded").asInt()), stats.succeeded);
    EXPECT_EQ(uint64_t(status.get("failed").asInt()), stats.failed);
    EXPECT_EQ(stats.processed, 2u);
    EXPECT_EQ(stats.failed, 1u);

    // ...and a final metrics snapshot that reflects the same counters
    // plus the chained session cache traffic.
    Json metrics =
        Json::parse(readFile(dir.sub("spool") + "/metrics.json"));
    EXPECT_EQ(metrics.get("schema").asString(), "bsyn.metrics.v1");
    const Json &counters = metrics.get("counters");
    EXPECT_EQ(counters.get("serve.jobs.processed").asInt(), 2);
    EXPECT_EQ(counters.get("serve.jobs.succeeded").asInt(), 1);
    EXPECT_EQ(counters.get("serve.jobs.failed").asInt(), 1);
    EXPECT_TRUE(counters.has("pipeline.cache.synth.misses"));
}

TEST(Worker, BackedOffIdlerStopsPromptly)
{
    ScratchDir dir("serve_backoff");
    serve::Spool spool(dir.sub("spool"));
    serve::WorkerOptions wo;
    wo.spoolDir = dir.sub("spool");
    wo.threads = 1;
    wo.pollMs = 1;
    wo.pollMaxMs = 60000; // idle scans converge toward one per minute
    serve::Worker worker(wo);
    std::thread t([&] { worker.run(); });
    // Let the empty-scan backoff climb well past a second.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    auto t0 = std::chrono::steady_clock::now();
    worker.requestStop();
    t.join();
    // The chunked idle sleep observes the stop request long before
    // the backed-off interval would expire on its own.
    EXPECT_LT(std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - t0)
                  .count(),
              5.0);
}

} // namespace
} // namespace bsyn
