/** @file Plagiarism-detector tests (winnowing/Moss, tiling/JPlag). */

#include <gtest/gtest.h>

#include "similarity/ctokenizer.hh"
#include "similarity/report.hh"
#include "similarity/tiling.hh"
#include "similarity/winnowing.hh"

namespace bsyn::similarity
{
namespace
{

const char *fibSource = R"(
int fib(int n) {
  int a = 0, b = 1, i, sum = 0;
  for (i = 0; i < n; i++) {
    sum = a + b;
    if (sum < 0) { printf("overflow"); break; }
    a = b;
    b = sum;
  }
  return sum;
}
)";

/** fib with every identifier/constant renamed — structure unchanged. */
const char *fibRenamed = R"(
int zeta(int count) {
  int p = 7, q = 9, k, total = 3;
  for (k = 7; k < count; k++) {
    total = p + q;
    if (total < 9) { printf("boom"); break; }
    p = q;
    q = total;
  }
  return total;
}
)";

const char *unrelatedSource = R"(
unsigned int mStream0[64];
void f0(void) {
  int i0;
  unsigned int t2 = 5;
  for (i0 = 0; i0 < 20; i0++) {
    mStream0[4] = mStream0[7] + mStream0[2];
    t2 = t2 ^ 129;
    mStream0[6] = (unsigned int)i0;
  }
}
)";

TEST(Tokenizer, NormalizesIdentifiersAndNumbers)
{
    auto a = tokenizeC("int foo = 42;");
    auto b = tokenizeC("int bar = 99;");
    EXPECT_EQ(a, b);
}

TEST(Tokenizer, KeywordsKeepIdentity)
{
    auto a = tokenizeC("while (x) {}");
    auto b = tokenizeC("if (x) {}");
    EXPECT_NE(a, b);
}

TEST(Tokenizer, StripsCommentsAndWhitespace)
{
    auto a = tokenizeC("int x; // comment\n/* more */");
    auto b = tokenizeC("int   y;");
    EXPECT_EQ(a, b);
}

TEST(Winnowing, IdenticalSourcesScoreOne)
{
    EXPECT_DOUBLE_EQ(winnowSimilarity(fibSource, fibSource), 1.0);
}

TEST(Winnowing, RenamingDoesNotHideCopying)
{
    // The whole point of token normalization: a renamed copy is caught.
    EXPECT_GT(winnowSimilarity(fibSource, fibRenamed), 0.8);
}

TEST(Winnowing, UnrelatedCodeScoresLow)
{
    EXPECT_LT(winnowSimilarity(fibSource, unrelatedSource), 0.45);
}

TEST(Winnowing, FingerprintsAreCompact)
{
    auto toks = tokenizeC(fibSource);
    auto prints = winnowFingerprints(toks);
    EXPECT_GT(prints.size(), 0u);
    EXPECT_LT(prints.size(), toks.size());
}

TEST(Tiling, IdenticalSourcesScoreOne)
{
    EXPECT_DOUBLE_EQ(tilingSimilarity(fibSource, fibSource), 1.0);
}

TEST(Tiling, RenamingDoesNotHideCopying)
{
    EXPECT_GT(tilingSimilarity(fibSource, fibRenamed), 0.8);
}

TEST(Tiling, UnrelatedCodeScoresLow)
{
    EXPECT_LT(tilingSimilarity(fibSource, unrelatedSource), 0.5);
}

TEST(Tiling, PartialCopyDetected)
{
    std::string half_copy = std::string(fibSource) + R"(
void extra(void) {
  int i;
  for (i = 0; i < 100; i++) printf("%d", i * 3);
}
)";
    double sim = tilingSimilarity(fibSource, half_copy);
    EXPECT_GT(sim, 0.5);
    EXPECT_LT(sim, 1.0);
}

TEST(Tiling, MinimumMatchLengthFiltersNoise)
{
    TilingOptions strict;
    strict.minimumMatchLength = 500; // longer than the whole stream
    EXPECT_DOUBLE_EQ(tilingSimilarity(fibSource, fibRenamed, strict), 0.0);
    EXPECT_GT(tilingSimilarity(fibSource, fibRenamed), 0.0);
}

TEST(Report, CombinesBothDetectors)
{
    auto same = compareSources(fibSource, fibSource);
    EXPECT_FALSE(same.hidesProprietaryInformation());
    auto diff = compareSources(fibSource, unrelatedSource);
    EXPECT_LT(diff.winnow, same.winnow);
    EXPECT_LT(diff.tiling, same.tiling);
}

TEST(Report, EmptyInputsHandled)
{
    auto r = compareSources("", "");
    EXPECT_DOUBLE_EQ(r.winnow, 1.0);
    auto r2 = compareSources("int x;", "");
    EXPECT_DOUBLE_EQ(r2.winnow, 0.0);
}

} // namespace
} // namespace bsyn::similarity
