/**
 * @file
 * Differential tests for the specialized timing engine: every suite
 * workload and the whole fuzz corpus run through the reference timing
 * model (CoreModel, as virtual observer and through the prepared timed
 * dispatch mode) and the specialized engine (TimedProgram + TimedCore,
 * with the cache and predictor state machines inlined), and the cycle
 * counts, cache/predictor statistics, ExecStats and per-PC event
 * counters must be identical. Superblock fusion is checked both ways:
 * a fused decode must time and count exactly like an unfused one.
 * This is the property that lets the specialized engine be the default
 * timing path: purely an accelerator, never a semantic fork.
 */

#include <gtest/gtest.h>

#include "isa/lowering.hh"
#include "lang/frontend.hh"
#include "opt/pipeline.hh"
#include "sim/core_model.hh"
#include "sim/decoded_program.hh"
#include "sim/machine.hh"
#include "sim/timed_core.hh"
#include "workloads/suite.hh"

#include "program_fuzzer.hh"

namespace bsyn
{
namespace
{

/** One instance per benchmark: the timing differential does not need
 *  every input size of the same kernel. */
const std::vector<workloads::Workload> &
representativeSuite()
{
    static const std::vector<workloads::Workload> suite = [] {
        std::vector<workloads::Workload> out;
        std::string last;
        for (const auto &w : workloads::mibenchSuite()) {
            if (w.benchmark == last)
                continue;
            last = w.benchmark;
            out.push_back(w);
        }
        return out;
    }();
    return suite;
}

isa::MachineProgram
lowerAt(const workloads::Workload &w, opt::OptLevel level)
{
    ir::Module m = lang::compile(w.source, w.name());
    opt::optimize(m, level);
    return isa::lower(m, isa::targetX86());
}

void
expectTimingEq(const sim::TimingStats &ref, const sim::TimingStats &spec,
               const std::string &what)
{
    EXPECT_EQ(ref.instructions, spec.instructions) << what;
    EXPECT_EQ(ref.cycles, spec.cycles) << what;
    EXPECT_EQ(ref.branch.branches, spec.branch.branches) << what;
    EXPECT_EQ(ref.branch.correct, spec.branch.correct) << what;
    EXPECT_EQ(ref.l1d.accesses, spec.l1d.accesses) << what;
    EXPECT_EQ(ref.l1d.misses, spec.l1d.misses) << what;
    EXPECT_EQ(ref.l2.accesses, spec.l2.accesses) << what;
    EXPECT_EQ(ref.l2.misses, spec.l2.misses) << what;
}

/**
 * Run the reference and the specialized engine over @p prog under
 * @p cfg and assert every observable identical: TimingStats, the
 * ExecStats of both runs, and the per-PC l1-miss / l2-miss /
 * mispredict counters. Both the fused and the fusion-free decode go
 * through the specialized engine.
 */
void
expectEnginesAgree(const isa::MachineProgram &prog,
                   const sim::CoreConfig &cfg, const std::string &what)
{
    sim::DecodedProgram fused(prog);
    sim::DecodeOptions plain_opts;
    plain_opts.superblockFusion = false;
    sim::DecodedProgram plain(prog, plain_opts);

    // Reference: prepared CoreModel on the timed dispatch mode.
    sim::PerPcTimingEvents ref_events;
    sim::CoreModel model(cfg);
    model.recordEvents(&ref_events, prog.size());
    model.prepare(prog);
    sim::ExecStats ref_exec = sim::executeTimed(plain, model);
    sim::TimingStats ref = model.finish();

    // Reference as a plain virtual ExecObserver over the fused decode:
    // fusion must replay the exact callback stream.
    sim::CoreModel obs_model(cfg);
    sim::ExecStats obs_exec = sim::execute(fused, &obs_model);
    sim::TimingStats obs = obs_model.finish();

    // Specialized engine over both decodes.
    sim::TimedProgram timed(fused, cfg);
    sim::PerPcTimingEvents spec_events;
    sim::TimedCore core(cfg);
    core.recordEvents(&spec_events, prog.size());
    sim::ExecStats spec_exec =
        sim::executeTimedSpecialized(fused, timed, core);
    sim::TimingStats spec = core.finish();

    sim::TimedProgram timed_plain(plain, cfg);
    sim::TimedCore plain_core(cfg);
    sim::ExecStats plain_exec =
        sim::executeTimedSpecialized(plain, timed_plain, plain_core);
    sim::TimingStats plain_spec = plain_core.finish();

    expectTimingEq(ref, obs, what + " [observer]");
    expectTimingEq(ref, spec, what + " [specialized]");
    expectTimingEq(ref, plain_spec, what + " [specialized, unfused]");
    EXPECT_TRUE(ref_exec == obs_exec) << what;
    EXPECT_TRUE(ref_exec == spec_exec) << what;
    EXPECT_TRUE(ref_exec == plain_exec) << what;
    EXPECT_TRUE(ref_events == spec_events) << what;

    // And the public entry points agree with the hand-driven runs.
    sim::TimingStats api_ref = sim::simulateTiming(
        fused, cfg, sim::ExecLimits(), sim::TimingEngine::Reference);
    sim::TimingStats api_spec = sim::simulateTiming(fused, cfg);
    expectTimingEq(ref, api_ref, what + " [api reference]");
    expectTimingEq(ref, api_spec, what + " [api specialized]");
}

class TimingDifferential
    : public ::testing::TestWithParam<std::tuple<size_t, opt::OptLevel>>
{};

TEST_P(TimingDifferential, CyclesStatsAndEventsIdentical)
{
    const auto &[idx, level] = GetParam();
    const workloads::Workload &w = representativeSuite()[idx];
    isa::MachineProgram prog = lowerAt(w, level);
    expectEnginesAgree(prog, sim::ptlsimConfig(8).core, w.name());
}

std::string
timingDiffName(
    const ::testing::TestParamInfo<TimingDifferential::ParamType> &info)
{
    const auto &[idx, level] = info.param;
    std::string name = representativeSuite()[idx].benchmark;
    for (char &c : name)
        if (c == '/' || c == '-')
            c = '_';
    return name + "_" + opt::optLevelName(level);
}

INSTANTIATE_TEST_SUITE_P(
    Suite, TimingDifferential,
    ::testing::Combine(
        ::testing::Range<size_t>(0, representativeSuite().size()),
        ::testing::Values(opt::OptLevel::O0, opt::OptLevel::O2)),
    timingDiffName);

TEST(TimingDifferential2, EveryPredictorCoreShapeAndCacheGeometry)
{
    // Cover all predictor state machines, the in-order issue path and
    // an L2-free hierarchy — every branch of the specialized engine
    // the ptlsim configuration alone would leave cold.
    const auto &w = workloads::findWorkload("sha/small");
    isa::MachineProgram prog = lowerAt(w, opt::OptLevel::O2);
    for (const char *pred :
         {"static", "bimodal", "gshare", "tournament"}) {
        for (bool in_order : {false, true}) {
            sim::CoreConfig cfg = sim::ptlsimConfig(8).core;
            cfg.predictor = pred;
            cfg.inOrder = in_order;
            expectEnginesAgree(prog, cfg,
                               std::string(pred) +
                                   (in_order ? " in-order" : " ooo"));
        }
    }
    sim::CoreConfig no_l2 = sim::ptlsimConfig(8).core;
    no_l2.hasL2 = false;
    expectEnginesAgree(prog, no_l2, "no-l2");

    sim::CoreConfig tiny = sim::ptlsimConfig(8).core;
    tiny.l1d.sizeBytes = 1024; // high miss rate: exercise the memo
    tiny.l1d.associativity = 1; // and the direct-mapped victim path
    expectEnginesAgree(prog, tiny, "tiny-l1");
}

class FuzzTimingDifferential : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(FuzzTimingDifferential, CyclesIdenticalAtO0AndO2)
{
    ProgramFuzzer fuzzer(GetParam());
    std::string src = fuzzer.generate();
    for (auto level : {opt::OptLevel::O0, opt::OptLevel::O2}) {
        ir::Module m = lang::compile(src, "fuzz");
        opt::optimize(m, level);
        isa::MachineProgram prog = isa::lower(m, isa::targetX86());
        expectEnginesAgree(prog, sim::ptlsimConfig(8).core,
                           "seed " + std::to_string(GetParam()) +
                               " at " + opt::optLevelName(level));
    }
}

// The same seed range as test_fuzz's Seeds instantiation — one corpus,
// three differential properties across the test binaries.
INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTimingDifferential,
                         ::testing::Range<uint64_t>(1, 41));

TEST(SuperblockStructure, ChainsPartitionTheBlocks)
{
    const auto &w = workloads::findWorkload("sha/small");
    isa::MachineProgram prog = lowerAt(w, opt::OptLevel::O2);
    sim::DecodedProgram decoded(prog);

    const auto &blocks = decoded.blocks();
    const auto &sbs = decoded.superblocks();
    ASSERT_FALSE(sbs.empty());

    // Superblocks tile the block list exactly, in order, no overlap.
    int32_t expect = 0;
    for (const auto &sb : sbs) {
        EXPECT_EQ(sb.firstBlock, expect);
        EXPECT_LT(sb.firstBlock, sb.endBlock);
        expect = sb.endBlock;
    }
    EXPECT_EQ(expect, static_cast<int32_t>(blocks.size()));

    for (size_t s = 0; s < sbs.size(); ++s) {
        for (int32_t b = sbs[s].firstBlock; b < sbs[s].endBlock; ++b) {
            EXPECT_EQ(decoded.superblockOf(b), static_cast<int>(s));
            // Every block but the chain's last falls through: its
            // final instruction is not a control transfer.
            const auto &blk = blocks[static_cast<size_t>(b)];
            bool last_in_chain = b + 1 == sbs[s].endBlock;
            const isa::MInst &tail =
                prog.code[static_cast<size_t>(blk.end - 1)];
            if (!last_in_chain) {
                EXPECT_FALSE(tail.isBlockEnd())
                    << "block " << b << " inside a chain must fall "
                    << "through";
            }
        }
    }
}

TEST(SuperblockStructure, FusedPairsAreWellFormed)
{
    // Wherever fusion fired, the successor PC must hold the matching
    // conditional branch (with its own dispatchable decode for side
    // entries) in the same superblock, and the fused instruction must
    // carry its target and sense.
    size_t fused_total = 0;
    for (const auto &w : representativeSuite()) {
        for (auto level : {opt::OptLevel::O0, opt::OptLevel::O2}) {
            isa::MachineProgram prog = lowerAt(w, level);
            sim::DecodedProgram decoded(prog);
            const auto &code = decoded.code();
            for (size_t pc = 0; pc < code.size(); ++pc) {
                const sim::DecodedInst &d = code[pc];
                if (d.h < sim::Handler::BrCmpEq ||
                    d.h > sim::Handler::BrCmpGeU)
                    continue;
                ++fused_total;
                ASSERT_LT(pc + 1, code.size());
                const sim::DecodedInst &br = code[pc + 1];
                bool if_zero =
                    (d.flags & sim::DecodedInst::kBrIfZero) != 0;
                EXPECT_EQ(br.h, if_zero ? sim::Handler::CondBrZ
                                        : sim::Handler::CondBrNZ);
                EXPECT_EQ(br.a, d.dst);
                EXPECT_EQ(br.target, d.target);
                EXPECT_EQ(decoded.superblockOf(
                              decoded.blockOf(static_cast<int>(pc))),
                          decoded.superblockOf(decoded.blockOf(
                              static_cast<int>(pc) + 1)));
            }
        }
    }
    // The suite must actually exercise the fused handlers.
    EXPECT_GT(fused_total, 0u);
}

TEST(TimedCoreCheckpoints, CyclesAtBoundariesAreMonotonic)
{
    const auto &w = workloads::findWorkload("sha/small");
    isa::MachineProgram prog = lowerAt(w, opt::OptLevel::O2);
    sim::DecodedProgram decoded(prog);
    sim::CoreConfig cfg = sim::ptlsimConfig(8).core;
    sim::TimedProgram timed(decoded, cfg);

    sim::TimedCore probe(cfg);
    sim::executeTimedSpecialized(decoded, timed, probe);
    sim::TimingStats total = probe.finish();
    ASSERT_GT(total.instructions, 4u);

    std::vector<uint64_t> bounds = {
        total.instructions / 4, total.instructions / 2,
        (3 * total.instructions) / 4, total.instructions};
    sim::TimedCore core(cfg);
    core.setCheckpoints(bounds);
    sim::executeTimedSpecialized(decoded, timed, core);
    sim::TimingStats again = core.finish();
    expectTimingEq(total, again, "checkpointing must not perturb");

    const auto &cuts = core.checkpointCycles();
    ASSERT_EQ(cuts.size(), bounds.size());
    for (size_t i = 1; i < cuts.size(); ++i)
        EXPECT_LE(cuts[i - 1], cuts[i]);
    // The final boundary sits at end of run: full cycle count.
    EXPECT_EQ(cuts.back(), total.cycles);
}

} // namespace
} // namespace bsyn
