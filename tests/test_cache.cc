/** @file Cache simulator tests, including the Table I stride/miss-rate
 *  property the synthetic memory streams rely on. */

#include <gtest/gtest.h>

#include "profile/memory_profile.hh"
#include "sim/cache.hh"

namespace bsyn::sim
{
namespace
{

CacheConfig
cfg(uint64_t size, uint32_t line = 32, uint32_t ways = 4)
{
    CacheConfig c;
    c.sizeBytes = size;
    c.lineBytes = line;
    c.associativity = ways;
    return c;
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(cfg(1024));
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x101F)); // same 32B line
    EXPECT_FALSE(c.access(0x1020)); // next line
    EXPECT_EQ(c.stats().accesses, 4u);
    EXPECT_EQ(c.stats().misses, 2u);
}

TEST(Cache, LruEviction)
{
    // Direct-mapped-like behaviour in one set: 2-way, force eviction.
    CacheConfig c2 = cfg(64, 32, 2); // one set, two ways
    Cache c(c2);
    EXPECT_EQ(c2.numSets(), 1u);
    c.access(0x0000);   // miss, way 0
    c.access(0x1000);   // miss, way 1
    c.access(0x0000);   // hit, refreshes LRU
    c.access(0x2000);   // miss, evicts 0x1000 (LRU)
    EXPECT_TRUE(c.access(0x0000));
    EXPECT_FALSE(c.access(0x1000)); // was evicted
}

TEST(Cache, StraddlingAccessTouchesBothLines)
{
    Cache c(cfg(1024));
    // 4 bytes starting 2 bytes before a line boundary: lines 0x1000
    // and 0x1020 must both be brought in.
    EXPECT_FALSE(c.access(0x101E, 4));
    EXPECT_EQ(c.stats().accesses, 2u);
    EXPECT_EQ(c.stats().misses, 2u);
    EXPECT_TRUE(c.probe(0x1000));
    EXPECT_TRUE(c.probe(0x1020));
    // Both lines resident: the same straddling access now hits.
    EXPECT_TRUE(c.access(0x101E, 4));
    EXPECT_EQ(c.stats().accesses, 4u);
    EXPECT_EQ(c.stats().misses, 2u);
}

TEST(Cache, StraddleHitsOnlyIfEveryLineHits)
{
    Cache c(cfg(1024));
    c.access(0x1000); // first line resident, second cold
    EXPECT_FALSE(c.access(0x101C, 8));
    EXPECT_TRUE(c.probe(0x1020)); // second line allocated by the miss
}

TEST(Cache, ContainedAccessIsOneLine)
{
    Cache c(cfg(1024));
    EXPECT_FALSE(c.access(0x1008, 8)); // fully inside one 32B line
    EXPECT_EQ(c.stats().accesses, 1u);
    EXPECT_TRUE(c.access(0x1008, 8));
    EXPECT_EQ(c.stats().accesses, 2u);
}

TEST(Cache, WideAccessOnNarrowLinesTouchesEveryLine)
{
    // 8-byte access on a 4-byte-line cache: two lines even when the
    // address is aligned.
    Cache c(cfg(64, 4, 1));
    EXPECT_FALSE(c.access(0x1000, 8));
    EXPECT_EQ(c.stats().accesses, 2u);
    EXPECT_EQ(c.stats().misses, 2u);
    EXPECT_TRUE(c.probe(0x1000));
    EXPECT_TRUE(c.probe(0x1004));
}

TEST(Cache, StraddleThrashesSingleSetCache)
{
    // One set, one way: the two lines of a straddling access evict
    // each other, so it misses every time — the width-ignoring access
    // would hit from the second access on.
    Cache c(cfg(32, 32, 1));
    for (int i = 0; i < 8; ++i)
        EXPECT_FALSE(c.access(0x101C, 8));
    EXPECT_EQ(c.stats().accesses, 16u);
    EXPECT_EQ(c.stats().misses, 16u);
}

TEST(CacheSweep, WidthAwareFeed)
{
    CacheSweep sweep({cfg(1024), cfg(64, 32, 2)});
    sweep.access(0x101E, 4);
    for (size_t i = 0; i < sweep.size(); ++i) {
        EXPECT_EQ(sweep.at(i).stats().accesses, 2u);
        EXPECT_TRUE(sweep.at(i).probe(0x1020));
    }
}

TEST(Cache, ProbeDoesNotDisturb)
{
    Cache c(cfg(1024));
    EXPECT_FALSE(c.probe(0x40));
    EXPECT_EQ(c.stats().accesses, 0u);
    c.access(0x40);
    EXPECT_TRUE(c.probe(0x40));
}

TEST(Cache, FlushEmptiesContents)
{
    Cache c(cfg(1024));
    c.access(0x80);
    c.flush();
    EXPECT_FALSE(c.probe(0x80));
}

TEST(Cache, WorkingSetFitsThenThrashes)
{
    // 8 KB working set: hits in a 16 KB cache, misses in 1 KB.
    Cache small(cfg(1024));
    Cache big(cfg(16 * 1024));
    for (int rep = 0; rep < 4; ++rep) {
        for (uint64_t a = 0; a < 8 * 1024; a += 4) {
            small.access(a);
            big.access(a);
        }
    }
    // Spatial locality bounds the miss rate at 1/8 for a 4-byte walk
    // of 32-byte lines, so "thrashing" means ~87.5% hits.
    EXPECT_GT(big.stats().hitRate(), 0.95);
    EXPECT_LT(small.stats().hitRate(), 0.90);
}

TEST(CacheSweep, MonotoneHitRates)
{
    CacheSweep sweep(CacheSweep::paperSweep());
    // A 12 KB working set exercises the knee of the sweep.
    for (int rep = 0; rep < 6; ++rep)
        for (uint64_t a = 0; a < 12 * 1024; a += 4)
            sweep.access(a);
    for (size_t i = 1; i < sweep.size(); ++i) {
        EXPECT_GE(sweep.at(i).stats().hitRate() + 1e-9,
                  sweep.at(i - 1).stats().hitRate())
            << "cache size " << sweep.at(i).config().sizeBytes;
    }
    // 16 KB and 32 KB hold the working set; 1 KB cannot.
    EXPECT_GT(sweep.at(4).stats().hitRate(), 0.95);
    EXPECT_LT(sweep.at(0).stats().hitRate(), 0.92);
}

/**
 * Table I property: striding through a large array with stride 4*c
 * bytes produces a miss rate of about 12.5% * c on a 32-byte-line
 * cache (class 8 = every access misses).
 */
class TableIStride : public ::testing::TestWithParam<int>
{};

TEST_P(TableIStride, StrideReproducesClassMissRate)
{
    int miss_class = GetParam();
    uint32_t stride = profile::strideForClass(miss_class);
    Cache c(cfg(8 * 1024, 32, 4));
    // Walk far beyond the cache so every line is cold on arrival.
    uint64_t addr = 0;
    const uint64_t region = 1ull << 22; // 4 MB
    for (int i = 0; i < 200000; ++i) {
        c.access(addr % region);
        addr += stride == 0 ? 0 : stride;
    }
    double expected = profile::missRateForClass(miss_class);
    EXPECT_NEAR(c.stats().missRate(), expected, 0.02)
        << "class " << miss_class << " stride " << stride;
}

INSTANTIATE_TEST_SUITE_P(AllClasses, TableIStride,
                         ::testing::Range(0, profile::numMissClasses));

TEST(MissClasses, TableIBandsRoundTrip)
{
    using profile::missRateClass;
    EXPECT_EQ(missRateClass(0.0), 0);
    EXPECT_EQ(missRateClass(0.05), 0);
    EXPECT_EQ(missRateClass(0.0626), 1);
    EXPECT_EQ(missRateClass(0.125), 1);
    EXPECT_EQ(missRateClass(0.25), 2);
    EXPECT_EQ(missRateClass(0.50), 4);
    EXPECT_EQ(missRateClass(0.9374), 7);
    EXPECT_EQ(missRateClass(0.94), 8);
    EXPECT_EQ(missRateClass(1.0), 8);
    // Class centers map back into their own class.
    for (int c = 0; c < profile::numMissClasses; ++c)
        EXPECT_EQ(missRateClass(profile::missRateForClass(c)), c);
}

TEST(MissClasses, StrideTable)
{
    for (int c = 0; c < profile::numMissClasses; ++c)
        EXPECT_EQ(profile::strideForClass(c), uint32_t(4 * c));
}

} // namespace
} // namespace bsyn::sim
