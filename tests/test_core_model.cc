/** @file Timing-model tests: the OoO/in-order cores must respond to
 *  cache size, branch predictability, ILP and width the way the paper's
 *  experiments require. */

#include <gtest/gtest.h>

#include "isa/lowering.hh"
#include "lang/frontend.hh"
#include "opt/pipeline.hh"
#include "pipeline/pipeline.hh"
#include "sim/machine.hh"

namespace bsyn
{
namespace
{

sim::TimingStats
timeSource(const char *src, const sim::CoreConfig &core,
           opt::OptLevel level = opt::OptLevel::O0)
{
    ir::Module m = lang::compile(src, "t");
    opt::OptOptions oo;
    oo.scheduleForInOrder = core.inOrder;
    opt::optimize(m, level, oo);
    auto prog = isa::lower(m, isa::targetX86());
    return sim::simulateTiming(prog, core);
}

sim::CoreConfig
baseCore()
{
    return sim::ptlsimConfig(8).core;
}

TEST(CoreModel, CpiIsPlausible)
{
    const char *src = R"(
uint t[256];
int main() {
  int i;
  for (i = 0; i < 5000; i++) t[i & 255] += (uint)i;
  printf("%u\n", t[0]);
  return 0;
})";
    auto stats = timeSource(src, baseCore());
    EXPECT_GT(stats.instructions, 1000u);
    double cpi = stats.cpi();
    EXPECT_GT(cpi, 0.3);
    EXPECT_LT(cpi, 6.0);
}

TEST(CoreModel, CacheMissesRaiseCpi)
{
    // Dependent pointer chase over 256 KB: every load misses an 8 KB
    // L1 and the dependence chain exposes the full latency.
    const char *src = R"(
uint t[65536];
int main() {
  int i;
  uint idx = 0;
  for (i = 0; i < 65536; i++) {
    idx = (t[idx] + (uint)i * 16 + 16) & 65535;
  }
  printf("%u\n", idx);
  return 0;
})";
    auto small = baseCore();
    auto big = baseCore();
    big.l1d.sizeBytes = 512 * 1024;
    auto s = timeSource(src, small);
    auto b = timeSource(src, big);
    EXPECT_LT(s.l1d.hitRate(), b.l1d.hitRate());
    EXPECT_GT(s.cpi(), b.cpi() * 1.2);
}

TEST(CoreModel, MispredictionsRaiseCpi)
{
    const char *data_dependent = R"(
uint rngState;
uint nextRand() { rngState = rngState * 1664525 + 1013904223; return rngState; }
int main() {
  int i; uint s = 0;
  rngState = 1;
  for (i = 0; i < 30000; i++) {
    if ((nextRand() >> 16) & 1) s += 3; else s ^= 7;
  }
  printf("%u\n", s);
  return 0;
})";
    const char *predictable = R"(
uint rngState;
uint nextRand() { rngState = rngState * 1664525 + 1013904223; return rngState; }
int main() {
  int i; uint s = 0;
  rngState = 1;
  for (i = 0; i < 30000; i++) {
    uint r = nextRand();
    if (i & 1) s += 3; else s ^= 7;
    s += r & 1;
  }
  printf("%u\n", s);
  return 0;
})";
    auto hard = timeSource(data_dependent, baseCore());
    auto easy = timeSource(predictable, baseCore());
    EXPECT_LT(hard.branch.accuracy(), 0.8);
    EXPECT_GT(easy.branch.accuracy(), 0.9);
    EXPECT_GT(hard.cpi(), easy.cpi());
}

TEST(CoreModel, InOrderSuffersMoreFromDependentChains)
{
    // A long dependent FP chain: the OoO core hides some latency via
    // independent work; the in-order core cannot.
    const char *src = R"(
double acc[8];
int main() {
  int i;
  double a = 1.0, b = 2.0;
  for (i = 0; i < 20000; i++) {
    a = a * 1.000001 + 0.5;     /* dependent chain */
    b = b + 1.5;                 /* independent work */
    acc[i & 7] = a + b;
  }
  printf("%d\n", (int)acc[0]);
  return 0;
})";
    auto ooo = baseCore();
    auto inorder = baseCore();
    inorder.inOrder = true;
    auto o = timeSource(src, ooo);
    auto i = timeSource(src, inorder);
    EXPECT_GT(i.cpi(), o.cpi());
}

TEST(CoreModel, WiderCoreIsFaster)
{
    const char *src = R"(
uint t[512];
int main() {
  int i;
  for (i = 0; i < 512; i++) t[i] = (uint)i * 3 + 1;
  uint a = 0, b = 0, c = 0, d = 0;
  for (i = 0; i < 512; i++) {
    a += t[i]; b ^= t[i]; c += t[i] >> 2; d ^= t[i] << 1;
  }
  printf("%u\n", a + b + c + d);
  return 0;
})";
    auto narrow = baseCore();
    narrow.width = 1;
    auto wide = baseCore();
    wide.width = 4;
    wide.robSize = 128;
    auto n = timeSource(src, narrow);
    auto w = timeSource(src, wide);
    EXPECT_GT(n.cycles, w.cycles);
}

TEST(CoreModel, SchedulingHelpsInOrderCore)
{
    // The paper's Itanium story: list scheduling (O2 on in-order)
    // improves EPIC performance notably.
    const char *src = R"(
double t[64];
int main() {
  int i, r;
  for (r = 0; r < 200; r++) {
    for (i = 0; i < 62; i++) {
      t[i] = t[i] * 1.5 + 0.25;
      t[i + 1] = t[i + 1] * 0.5 + (double)i;
      t[i + 2] = t[i + 2] + 1.0;
    }
  }
  printf("%d\n", (int)t[5]);
  return 0;
})";
    auto core = baseCore();
    core.inOrder = true;
    core.width = 6;

    ir::Module unsched = lang::compile(src, "u");
    opt::OptOptions no_sched;
    no_sched.scheduleForInOrder = false;
    opt::optimize(unsched, opt::OptLevel::O2, no_sched);
    auto u = sim::simulateTiming(isa::lower(unsched, isa::targetIa64()),
                                 core);

    ir::Module sched = lang::compile(src, "s");
    opt::OptOptions with_sched;
    with_sched.scheduleForInOrder = true;
    opt::optimize(sched, opt::OptLevel::O2, with_sched);
    auto s = sim::simulateTiming(isa::lower(sched, isa::targetIa64()),
                                 core);

    EXPECT_LT(s.cycles, u.cycles);
}

TEST(Machines, CatalogueMatchesTableIII)
{
    auto machines = sim::paperMachines();
    ASSERT_EQ(machines.size(), 5u);
    EXPECT_EQ(machines[0].name, "Pentium 4, 3GHz");
    EXPECT_EQ(machines[3].name, "Itanium 2");
    EXPECT_TRUE(machines[3].core.inOrder);
    EXPECT_EQ(machines[3].isa.family, isa::IsaFamily::Risc);
    EXPECT_DOUBLE_EQ(machines[4].freqGHz, 2.67);
    // Frequency ordering: P4 3GHz fastest clock, Itanium slowest.
    EXPECT_GT(machines[0].freqGHz, machines[3].freqGHz);
}

TEST(Machines, TimeNsUsesFrequency)
{
    sim::MachineSpec m;
    m.freqGHz = 2.0;
    EXPECT_DOUBLE_EQ(m.timeNs(1000), 500.0);
}

} // namespace
} // namespace bsyn
