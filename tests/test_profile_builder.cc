/** @file Tests for programmatic profile construction (the paper's
 *  "emerging workloads" application, §II-B.c). */

#include <gtest/gtest.h>

#include "isa/lowering.hh"
#include "lang/frontend.hh"
#include "pipeline/pipeline.hh"
#include "support/error.hh"
#include "synth/profile_builder.hh"

namespace bsyn
{
namespace
{

synth::SyntheticBenchmark
synthesizeSpec(const profile::StatisticalProfile &prof)
{
    synth::SynthesisOptions opts;
    opts.reductionFactor = 1;
    return synth::synthesize(prof, opts);
}

TEST(ProfileBuilder, LoopNestSurvivesIntoTheBenchmark)
{
    synth::ProfileBuilder spec("nest");
    int outer = spec.addLoop(50, 1);
    int inner = spec.addLoop(20, 50, outer);
    synth::BlockSpec body;
    body.execCount = 1000; // 50 * 20
    body.loads = 2;
    body.stores = 1;
    spec.addBlock(inner, body);

    auto prof = spec.build();
    ASSERT_EQ(prof.sfgl.loops.size(), 2u);
    EXPECT_EQ(prof.sfgl.loops[1].depth, 2);

    auto syn = synthesizeSpec(prof);
    // The emitted clone must contain a genuine nested counted loop.
    EXPECT_NE(syn.cSource.find("for (i0 = 0; i0 < 50"),
              std::string::npos)
        << syn.cSource;
    EXPECT_NE(syn.cSource.find("for (i1 = 0; i1 < 20"),
              std::string::npos)
        << syn.cSource;

    auto stats = pipeline::runSource(syn.cSource, "nest",
                                     opt::OptLevel::O0, isa::targetX86());
    EXPECT_GT(stats.instructions, 1000u);
}

TEST(ProfileBuilder, SpecifiedMixShowsUpInTheClone)
{
    synth::ProfileBuilder spec("fp-heavy");
    int loop = spec.addLoop(2000, 1);
    synth::BlockSpec body;
    body.execCount = 2000;
    body.fpOps = 8;
    body.loads = 2;
    body.stores = 1;
    body.fpMemory = true;
    spec.addBlock(loop, body);

    auto prof = spec.build();
    EXPECT_GT(prof.mix.fpFraction(), 0.3);

    auto syn = synthesizeSpec(prof);
    ir::Module m = lang::compile(syn.cSource, "clone");
    auto measured = profile::profileModule(m);
    EXPECT_GT(measured.mix.fpFraction(), 0.10);
    EXPECT_NE(syn.cSource.find("dStream"), std::string::npos);
}

TEST(ProfileBuilder, MissClassDrivesCacheBehaviour)
{
    auto makeSpec = [](int miss_class) {
        synth::ProfileBuilder spec("mem");
        int loop = spec.addLoop(20000, 1);
        synth::BlockSpec body;
        body.execCount = 20000;
        body.loads = 2;
        body.stores = 1;
        body.intOps = 2;
        body.loadMissClass = miss_class;
        body.storeMissClass = miss_class;
        spec.addBlock(loop, body);
        return spec.build();
    };

    auto missRate = [&](int cls) {
        auto syn = synthesizeSpec(makeSpec(cls));
        auto machine = sim::ptlsimConfig(8);
        ir::Module m = lang::compile(syn.cSource, "mem");
        auto prog = isa::lower(m, machine.isa);
        auto t = sim::simulateTiming(prog, machine.core);
        return t.l1d.missRate();
    };

    double resident = missRate(0);
    double streaming = missRate(6);
    EXPECT_LT(resident, 0.05);
    EXPECT_GT(streaming, resident + 0.10);
}

TEST(ProfileBuilder, HardBranchesProduceModuloGuards)
{
    synth::ProfileBuilder spec("branchy");
    int loop = spec.addLoop(5000, 1);
    synth::BlockSpec body;
    body.execCount = 5000;
    body.intOps = 3;
    body.endsInBranch = true;
    body.takenRate = 0.33;
    body.transitionRate = 0.5; // hard
    spec.addBlock(loop, body);
    synth::BlockSpec arm;
    arm.execCount = 1650; // ~taken share
    arm.intOps = 4;
    spec.addBlock(loop, arm);

    auto syn = synthesizeSpec(spec.build());
    EXPECT_NE(syn.cSource.find("%"), std::string::npos) << syn.cSource;
    auto stats = pipeline::runSource(syn.cSource, "branchy",
                                     opt::OptLevel::O0, isa::targetX86());
    EXPECT_GT(stats.branches, 5000u);
}

TEST(ProfileBuilder, RejectsBadSpecs)
{
    synth::ProfileBuilder spec("bad");
    EXPECT_THROW(spec.addLoop(0.5, 1), PanicError);
    EXPECT_THROW(spec.addLoop(10, 1, /*parent=*/5), PanicError);
    synth::BlockSpec b;
    EXPECT_THROW(spec.addBlock(7, b), PanicError);
}

} // namespace
} // namespace bsyn
