/**
 * @file
 * Execution-semantics tests: each MiniC snippet is compiled and run at
 * every optimization level on every target; the printed output must be
 * identical everywhere. This is the framework's central correctness
 * property (optimization levels and ISAs must preserve semantics —
 * otherwise every cross-compiler experiment in the paper collapses).
 */

#include <gtest/gtest.h>

#include "isa/lowering.hh"
#include "lang/frontend.hh"
#include "pipeline/pipeline.hh"
#include "sim/decoded_program.hh"
#include "support/error.hh"

namespace bsyn
{
namespace
{

struct ExecCase
{
    const char *name;
    const char *source;
    const char *expected; ///< exact expected output
};

const ExecCase execCases[] = {
    {"signed_arithmetic",
     R"(int main() {
          int a = -7, b = 3;
          printf("%d %d %d %d\n", a + b, a - b, a / b, a % b);
          return 0;
        })",
     "-4 -10 -2 -1\n"},
    {"unsigned_arithmetic",
     R"(int main() {
          uint a = 0xFFFFFFFF; uint b = 2;
          printf("%u %u %u\n", a / b, a % b, a + 1);
          return 0;
        })",
     "2147483647 1 0\n"},
    {"signed_shift_is_arithmetic",
     R"(int main() {
          int a = -16;
          uint b = 0x80000000;
          printf("%d %u\n", a >> 2, b >> 4);
          return 0;
        })",
     "-4 134217728\n"},
    {"int_overflow_wraps",
     R"(int main() {
          int a = 2147483647;
          printf("%d\n", a + 1);
          return 0;
        })",
     "-2147483648\n"},
    {"division_by_zero_defined",
     // Framework-defined semantics: x/0 == 0, x%0 == 0 (DESIGN.md).
     R"(int main() {
          int z = 0;
          printf("%d %d\n", 5 / z, 5 % z);
          return 0;
        })",
     "0 0\n"},
    {"double_arithmetic",
     R"(int main() {
          double a = 1.5, b = 0.25;
          printf("%f %f %f\n", a + b, a * b, a / b);
          return 0;
        })",
     "1.750000 0.375000 6.000000\n"},
    {"conversions",
     R"(int main() {
          double d = 3.9;
          int i = (int)d;
          double e = (double)i / 2.0;
          uint u = (uint)2.5;
          printf("%d %f %u\n", i, e, u);
          return 0;
        })",
     "3 1.500000 2\n"},
    {"negative_float_truncation",
     R"(int main() {
          double d = -3.9;
          printf("%d\n", (int)d);
          return 0;
        })",
     "-3\n"},
    {"comparisons_mixed",
     R"(int main() {
          int a = -1;
          uint b = 1;
          printf("%d %d %d\n", a < 0, (uint)a > b, 1.5 < 2.5);
          return 0;
        })",
     "1 1 1\n"},
    {"short_circuit_evaluation",
     R"(int g;
        int bump() { g = g + 1; return 1; }
        int main() {
          g = 0;
          int a = 0 && bump();
          int b = 1 || bump();
          int c = 1 && bump();
          printf("%d %d %d %d\n", a, b, c, g);
          return 0;
        })",
     "0 1 1 1\n"},
    {"ternary",
     R"(int main() {
          int x = 7;
          printf("%d %d\n", x > 5 ? 10 : 20, x < 5 ? 10 : 20);
          return 0;
        })",
     "10 20\n"},
    {"loops_break_continue",
     R"(int main() {
          int sum = 0, i;
          for (i = 0; i < 100; i++) {
            if (i % 2) continue;
            if (i > 10) break;
            sum += i;
          }
          printf("%d\n", sum);
          return 0;
        })",
     "30\n"},
    {"while_and_dowhile",
     R"(int main() {
          int a = 0, b = 0, n = 0;
          while (n < 3) { a += n; n++; }
          do { b += n; n++; } while (n < 3);
          printf("%d %d\n", a, b);
          return 0;
        })",
     "3 3\n"},
    {"nested_loop_counts",
     R"(int main() {
          int count = 0, i, j, k;
          for (i = 0; i < 3; i++)
            for (j = 0; j < 4; j++)
              for (k = 0; k < 5; k++)
                count++;
          printf("%d\n", count);
          return 0;
        })",
     "60\n"},
    {"global_arrays",
     R"(uint tab[16] = {1, 2, 3};
        int main() {
          tab[3] = tab[0] + tab[1] + tab[2];
          int i; uint s = 0;
          for (i = 0; i < 16; i++) s += tab[i];
          printf("%u %u\n", tab[3], s);
          return 0;
        })",
     "6 12\n"},
    {"local_arrays",
     R"(int main() {
          int a[8];
          int i;
          for (i = 0; i < 8; i++) a[i] = i * i;
          printf("%d %d\n", a[3], a[7]);
          return 0;
        })",
     "9 49\n"},
    {"recursion",
     R"(int fact(int n) { return n <= 1 ? 1 : n * fact(n - 1); }
        int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
        int main() {
          printf("%d %d\n", fact(10), fib(15));
          return 0;
        })",
     "3628800 610\n"},
    {"mutual_recursion",
     // No prototypes needed: sema registers all functions first.
     R"(int isEven(int n) { if (n == 0) return 1; return isOdd(n - 1); }
        int isOdd(int n) { if (n == 0) return 0; return isEven(n - 1); }
        int main() {
          printf("%d %d\n", isEven(10), isOdd(7));
          return 0;
        })",
     "1 1\n"},
    {"compound_assignment",
     R"(int main() {
          int x = 100;
          x += 5; x -= 2; x *= 3; x /= 4; x %= 50;
          uint y = 0xF0;
          y &= 0x3C; y |= 1; y ^= 2; y <<= 2; y >>= 1;
          printf("%d %u\n", x, y);
          return 0;
        })",
     "27 102\n"},
    {"incdec_value_semantics",
     R"(int main() {
          int i = 5;
          int a = i++;
          int b = ++i;
          int c = i--;
          printf("%d %d %d %d\n", a, b, c, i);
          return 0;
        })",
     "5 7 7 6\n"},
    {"shift_masking",
     R"(int main() {
          uint x = 1;
          int s = 33; /* masked to 1 like x86 */
          printf("%u\n", x << s);
          return 0;
        })",
     "2\n"},
    {"bitops",
     R"(int main() {
          uint a = 0xF0F0F0F0;
          printf("%u %u %u %u\n", a & 0xFF, a | 0xF, a ^ a, ~a);
          return 0;
        })",
     "240 4042322175 0 252645135\n"},
    {"char_literals_and_printf_c",
     R"(int main() {
          int c = 'A';
          printf("%c%c %d\n", c, c + 1, c);
          return 0;
        })",
     "AB 65\n"},
    {"params_many",
     R"(int sum6(int a, int b, int c, int d, int e, int f) {
          return a + b + c + d + e + f;
        }
        int main() {
          printf("%d\n", sum6(1, 2, 3, 4, 5, 6));
          return 0;
        })",
     "21\n"},
    {"double_params_and_return",
     R"(double mix(double a, double b, int k) {
          return a * (double)k + b;
        }
        int main() {
          printf("%f\n", mix(1.5, 0.25, 3));
          return 0;
        })",
     "4.750000\n"},
    {"exit_code_from_main",
     R"(int main() { printf("x\n"); return 42; })",
     "x\n"},
    // printf must honor flags, field width and precision the way C
    // printf does (they used to be parsed and then discarded).
    {"printf_width_and_flags",
     R"(int main() {
          printf("[%08x] [%-5d] [%5d] [%+d] [% d]\n",
                 48879, 42, 42, 7, 7);
          return 0;
        })",
     "[0000beef] [42   ] [   42] [+7] [ 7]\n"},
    {"printf_precision",
     R"(int main() {
          printf("%.3f %.0f %8.2f %e %g\n",
                 1.0 / 3.0, 2.5, 3.14159, 12345.678, 0.0001);
          return 0;
        })",
     "0.333 2     3.14 1.234568e+04 0.0001\n"},
    {"printf_char_width",
     R"(int main() {
          printf("[%3c] [%-3c]\n", 'A', 'B');
          return 0;
        })",
     "[  A] [B  ]\n"},
    {"printf_zero_pad_and_int_precision",
     R"(int main() {
          printf("%03d %.5d %5u %#x %o %X\n", 7, 42, 9, 255, 8, 48879);
          return 0;
        })",
     "007 00042     9 0xff 10 BEEF\n"},
    // An unrecognized conversion is emitted literally and must not
    // consume an argument — later conversions keep their values (the
    // old interpreter shifted every subsequent argument by one).
    {"printf_unknown_conversion_consumes_nothing",
     R"(int main() {
          printf("a%yb %d %d\n", 1, 2);
          printf("%k %d\n", 5);
          return 0;
        })",
     "a%yb 1 2\n%k 5\n"},
};

class ExecSemantics
    : public ::testing::TestWithParam<
          std::tuple<size_t, opt::OptLevel, const char *>>
{};

TEST_P(ExecSemantics, OutputMatchesEverywhere)
{
    const auto &[case_idx, level, target_name] = GetParam();
    const ExecCase &c = execCases[case_idx];
    auto stats = pipeline::runSource(c.source, c.name, level,
                                     isa::targetByName(target_name));
    EXPECT_EQ(stats.output, c.expected) << c.name;
}

std::string
execName(const ::testing::TestParamInfo<ExecSemantics::ParamType> &info)
{
    const auto &[case_idx, level, target_name] = info.param;
    return std::string(execCases[case_idx].name) + "_" +
           opt::optLevelName(level) + "_" + target_name;
}

INSTANTIATE_TEST_SUITE_P(
    AllLevelsAndTargets, ExecSemantics,
    ::testing::Combine(
        ::testing::Range<size_t>(0, std::size(execCases)),
        ::testing::Values(opt::OptLevel::O0, opt::OptLevel::O1,
                          opt::OptLevel::O2, opt::OptLevel::O3),
        ::testing::Values("x86", "x86_64", "ia64")),
    execName);

TEST(ExecMisc, ExitCodePropagates)
{
    auto stats = pipeline::runSource(
        "int main() { return 42; }", "exit", opt::OptLevel::O0,
        isa::targetX86());
    EXPECT_EQ(stats.exitCode, 42);
}

TEST(ExecMisc, InstructionLimitGuards)
{
    ir::Module m = lang::compile(
        "int main() { while (1) {} return 0; }", "inf");
    auto prog = isa::lower(m, isa::targetX86());
    sim::ExecLimits limits;
    limits.maxInstructions = 10000;
    EXPECT_THROW(sim::execute(prog, nullptr, limits), FatalError);
}

TEST(ExecMisc, InstructionLimitCountIsExact)
{
    // A limit-hit run must report exactly the number of instructions
    // that retired — the old guard incremented before bailing and so
    // overcounted by one. Both engines must agree.
    ir::Module m = lang::compile(
        "int main() { while (1) {} return 0; }", "inf");
    auto prog = isa::lower(m, isa::targetX86());
    sim::ExecLimits limits;
    limits.maxInstructions = 10000;
    for (auto engine :
         {sim::ExecEngine::Predecoded, sim::ExecEngine::Reference}) {
        limits.engine = engine;
        try {
            sim::execute(prog, nullptr, limits);
            FAIL() << "instruction limit did not trigger";
        } catch (const FatalError &e) {
            EXPECT_NE(std::string(e.what()).find(
                          "after retiring 10000 instructions"),
                      std::string::npos)
                << e.what();
        }
    }
}

TEST(ExecMisc, EnginesAgreeOnEveryExecCase)
{
    // Cheap inline differential pass: every semantics case above must
    // produce identical ExecStats on the reference and the predecoded
    // engine (the workload-scale version lives in
    // test_differential_engine).
    for (const ExecCase &c : execCases) {
        ir::Module m = lang::compile(c.source, c.name);
        auto prog = isa::lower(m, isa::targetX86());
        auto ref = sim::executeReference(prog);
        auto fast = sim::execute(sim::DecodedProgram(prog));
        EXPECT_TRUE(ref == fast) << c.name;
        EXPECT_EQ(ref.output, c.expected) << c.name;
    }
}

TEST(ExecMisc, StackOverflowDetected)
{
    ir::Module m = lang::compile(
        "int f(int n) { int pad[64]; pad[0] = n; return f(n + 1) + pad[0]; }"
        "int main() { return f(0); }",
        "deep");
    auto prog = isa::lower(m, isa::targetX86());
    EXPECT_THROW(sim::execute(prog), FatalError);
}

TEST(ExecMisc, OutOfBoundsGlobalAccessDetected)
{
    ir::Module m = lang::compile(
        "uint t[4]; int main() { int i = 1000000; t[i] = 1; return 0; }",
        "oob");
    auto prog = isa::lower(m, isa::targetX86());
    EXPECT_THROW(sim::execute(prog), FatalError);
}

} // namespace
} // namespace bsyn
