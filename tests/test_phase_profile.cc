/** @file Tests for the v3 time-sliced/phase profile model: loader
 *  compatibility with checked-in v1 and v2 profile JSON (both load as
 *  single-phase v3 with identical aggregates), v3 serialization shape
 *  and round-trips, phase detection matching the phase_shift
 *  generator's configured phase count, and phase-aware synthesis
 *  (single-phase clones byte-identical to the aggregate-only path,
 *  multi-phase clones stitched from per-phase skeletons). */

#include <gtest/gtest.h>

#include "gen/registry.hh"
#include "lang/frontend.hh"
#include "profile/profiler.hh"
#include "profile/statistical_profile.hh"
#include "synth/synthesizer.hh"
#include "workloads/workload.hh"

namespace bsyn
{
namespace
{

std::string
fixturePath(const char *file)
{
    return std::string(BSYN_TEST_DATA_DIR) + "/" + file;
}

/** A loop-heavy single-phase kernel (steady behaviour throughout). */
const char *kSinglePhaseSource = R"(
int main() {
  int A[64];
  int i;
  int j;
  int acc;
  acc = 0;
  for (i = 0; i < 64; i = i + 1) A[i] = i * 3 + 1;
  for (i = 0; i < 300; i = i + 1) {
    for (j = 0; j < 64; j = j + 1) {
      if ((j % 3) == 0) acc = acc + A[j];
      else acc = acc ^ A[j];
    }
  }
  printf("acc=%d\n", acc);
  return 0;
}
)";

profile::StatisticalProfile
profileSource(const char *src, const char *name,
              profile::ProfileOptions popts = {})
{
    ir::Module m = lang::compile(src, name);
    return profile::profileModule(m, popts);
}

profile::StatisticalProfile
profilePhaseShift(int phases, uint64_t seed = 7)
{
    const gen::Family &f = gen::Registry::global().require("phase_shift");
    auto w = f.make({{"phases", phases}, {"rounds", 1}, {"work", 40000}},
                    static_cast<long long>(seed));
    ir::Module m = workloads::compileWorkload(w);
    return profile::profileModule(m);
}

void
expectSinglePhaseMirrorsAggregate(const profile::StatisticalProfile &p)
{
    ASSERT_EQ(p.phases.size(), 1u);
    EXPECT_FALSE(p.multiPhase());
    EXPECT_EQ(p.phaseCount(), 1u);
    const auto &ph = p.phases[0];
    EXPECT_EQ(ph.dynamicInstructions, p.dynamicInstructions);
    EXPECT_EQ(ph.firstSlice, 0u);
    EXPECT_EQ(ph.mix.toJson().dump(-1), p.mix.toJson().dump(-1));
    EXPECT_EQ(ph.sfgl.toJson().dump(-1), p.sfgl.toJson().dump(-1));
}

TEST(ProfileCompat, V1LoadsAsSinglePhaseV3)
{
    auto p = profile::StatisticalProfile::loadFrom(
        fixturePath("profile_v1.json"));
    EXPECT_GT(p.dynamicInstructions, 0u);
    EXPECT_FALSE(p.sfgl.blocks.empty());
    // Pre-v3 files carry no slice stream.
    EXPECT_EQ(p.sliceLength, 0u);
    expectSinglePhaseMirrorsAggregate(p);
    // v1 descriptors (5-element arrays) load with the branch fields
    // defaulted — the profile must still re-serialize as v3.
    Json j = p.toJson();
    EXPECT_EQ(j.get("version").asInt(), 3);
    EXPECT_FALSE(j.has("phases"));
}

TEST(ProfileCompat, V2LoadsAsSinglePhaseV3)
{
    auto p = profile::StatisticalProfile::loadFrom(
        fixturePath("profile_v2.json"));
    EXPECT_GT(p.dynamicInstructions, 0u);
    EXPECT_EQ(p.sliceLength, 0u);
    expectSinglePhaseMirrorsAggregate(p);
}

TEST(ProfileCompat, V1AndV2DescribeTheSameWorkload)
{
    // The two fixtures were stripped from the same v3 profile; the
    // aggregate statistics both loaders reconstruct must agree.
    auto v1 = profile::StatisticalProfile::loadFrom(
        fixturePath("profile_v1.json"));
    auto v2 = profile::StatisticalProfile::loadFrom(
        fixturePath("profile_v2.json"));
    EXPECT_EQ(v1.workloadName, v2.workloadName);
    EXPECT_EQ(v1.dynamicInstructions, v2.dynamicInstructions);
    EXPECT_EQ(v1.mix.toJson().dump(-1), v2.mix.toJson().dump(-1));
    EXPECT_EQ(v1.sfgl.blocks.size(), v2.sfgl.blocks.size());
}

TEST(PhaseProfile, SinglePhaseSerializesCompact)
{
    auto p = profileSource(kSinglePhaseSource, "steady");
    ASSERT_EQ(p.phases.size(), 1u);
    EXPECT_GT(p.sliceLength, 0u);
    EXPECT_GE(p.sliceCount, 2u);
    Json j = p.toJson();
    EXPECT_EQ(j.get("version").asInt(), 3);
    // A single phase mirrors the aggregate, so serializing it would
    // only duplicate the profile; the key is reserved for real lists.
    EXPECT_FALSE(j.has("phases"));

    auto back = profile::StatisticalProfile::deserialize(p.serialize());
    EXPECT_EQ(back.serialize(), p.serialize());
    expectSinglePhaseMirrorsAggregate(back);
    EXPECT_EQ(back.sliceLength, p.sliceLength);
    EXPECT_EQ(back.sliceCount, p.sliceCount);
}

TEST(PhaseProfile, MultiPhaseRoundTripsByteIdentically)
{
    auto p = profilePhaseShift(3);
    ASSERT_TRUE(p.multiPhase());
    Json j = p.toJson();
    ASSERT_TRUE(j.has("phases"));
    EXPECT_EQ(j.get("phases").size(), p.phases.size());

    auto back = profile::StatisticalProfile::deserialize(p.serialize());
    EXPECT_EQ(back.serialize(), p.serialize());
    ASSERT_EQ(back.phases.size(), p.phases.size());

    // The phase list tiles the run: slice ranges are contiguous and
    // the per-phase instruction counts sum to the aggregate.
    uint64_t sum = 0, nextSlice = 0;
    for (const auto &ph : p.phases) {
        EXPECT_EQ(ph.firstSlice, nextSlice);
        EXPECT_GE(ph.sliceCount, 1u);
        nextSlice = ph.firstSlice + ph.sliceCount;
        sum += ph.dynamicInstructions;
    }
    EXPECT_EQ(nextSlice, p.sliceCount);
    EXPECT_EQ(sum, p.dynamicInstructions);
}

TEST(PhaseDetection, MatchesTheGeneratorsConfiguredCount)
{
    // phase_shift's knob IS the ground truth: the instance executes
    // exactly `phases` behaviourally distinct regions back to back
    // (rounds=1), and detection must recover that count.
    for (int phases : {2, 3}) {
        auto p = profilePhaseShift(phases);
        EXPECT_EQ(p.phases.size(), static_cast<size_t>(phases))
            << "phases=" << phases;
    }
}

TEST(PhaseSynthesis, SinglePhaseMatchesAggregateOnlyByte)
{
    auto p = profileSource(kSinglePhaseSource, "steady");
    ASSERT_FALSE(p.multiPhase());
    synth::SynthesisOptions on, off;
    on.phaseAware = true;
    off.phaseAware = false;
    auto a = synth::synthesize(p, on);
    auto b = synth::synthesize(p, off);
    EXPECT_EQ(a.cSource, b.cSource);
    EXPECT_EQ(a.phases, 1u);
    EXPECT_EQ(b.phases, 1u);
}

TEST(PhaseSynthesis, MultiPhaseClonesAreStitchedPerPhase)
{
    auto p = profilePhaseShift(3);
    ASSERT_EQ(p.phases.size(), 3u);
    auto syn = synth::synthesize(p);
    EXPECT_EQ(syn.phases, 3u);
    for (const char *fn : {"p0f0", "p1f0", "p2f0"})
        EXPECT_NE(syn.cSource.find(fn), std::string::npos) << fn;
    // The stitched source is a valid bsyn program.
    EXPECT_NO_THROW(lang::compile(syn.cSource, "clone"));

    // Opting out falls back to the aggregate-only clone.
    synth::SynthesisOptions off;
    off.phaseAware = false;
    auto agg = synth::synthesize(p, off);
    EXPECT_EQ(agg.phases, 1u);
    EXPECT_EQ(agg.cSource.find("p1f0"), std::string::npos);

    // A phase budget below the detected count also falls back.
    synth::SynthesisOptions capped;
    capped.maxPhases = 2;
    auto fell = synth::synthesize(p, capped);
    EXPECT_EQ(fell.phases, 1u);
    EXPECT_EQ(fell.cSource, agg.cSource);
}

} // namespace
} // namespace bsyn
