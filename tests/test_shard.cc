/** @file Tests for the deterministic suite sharding layer: shard-spec
 *  parsing, the stable name-hash partition, the suite_status.json
 *  artifact, and the core acceptance property — the union of N shard
 *  output directories, reassembled by serve::mergeSuiteDirs, is
 *  byte-identical to an unsharded run at any thread count, cold or
 *  warm. */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <unistd.h>

#include "pipeline/run_sink.hh"
#include "pipeline/session.hh"
#include "serve/merge.hh"
#include "serve/shard.hh"
#include "support/error.hh"
#include "support/string_util.hh"
#include "workloads/suite.hh"

namespace fs = std::filesystem;

namespace bsyn
{
namespace
{

/** Fresh scratch directory under the gtest temp root, wiped on exit. */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &tag)
        : path_(std::string(::testing::TempDir()) + "bsyn_" + tag + "_" +
                std::to_string(::getpid()))
    {
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~ScratchDir()
    {
        std::error_code ec;
        fs::remove_all(path_, ec);
    }
    const std::string &str() const { return path_; }
    std::string sub(const std::string &name) const
    {
        return path_ + "/" + name;
    }

  private:
    std::string path_;
};

std::vector<workloads::Workload>
smallBatch()
{
    return {workloads::findWorkload("crc32/small"),
            workloads::findWorkload("bitcount/small"),
            workloads::findWorkload("stringsearch/small"),
            workloads::findWorkload("sha/small"),
            workloads::findWorkload("dijkstra/small"),
            workloads::findWorkload("qsort/large")};
}

/** Run one (possibly sharded) suite exactly like `bsyn suite -o`:
 *  stream through a DirectorySink and write the status artifact. */
void
runShard(const std::vector<workloads::Workload> &all,
         serve::ShardSpec spec, const std::string &outDir,
         const std::string &cacheDir, unsigned threads)
{
    serve::ShardedBatch sharded = serve::filterShard(all, spec);
    pipeline::SessionOptions so;
    so.threads = threads;
    so.cacheDir = cacheDir;
    so.synthesis.targetInstructions = 30000;
    pipeline::Session session(std::move(so));
    pipeline::DirectorySink sink(outDir);
    auto statuses = session.processSuite(sharded.workloads, sink);
    serve::makeSuiteStatus(sharded, statuses)
        .saveTo(outDir + "/" + serve::kSuiteStatusFile);
}

/** Byte-compare two directories (same file set, same contents). */
void
expectIdenticalDirs(const std::string &a, const std::string &b)
{
    std::set<std::string> filesA, filesB;
    for (const auto &e : fs::directory_iterator(a))
        filesA.insert(e.path().filename().string());
    for (const auto &e : fs::directory_iterator(b))
        filesB.insert(e.path().filename().string());
    EXPECT_EQ(filesA, filesB);
    for (const auto &name : filesA) {
        SCOPED_TRACE(name);
        EXPECT_EQ(readFile(a + "/" + name), readFile(b + "/" + name));
    }
}

TEST(ShardSpec, ParsesValidSpecs)
{
    auto s = serve::parseShardSpec("2/3");
    EXPECT_EQ(s.index, 2u);
    EXPECT_EQ(s.count, 3u);
    EXPECT_FALSE(s.isAll());
    EXPECT_EQ(s.str(), "2/3");

    // i == N is the last shard, not an error (1-based indices).
    auto last = serve::parseShardSpec("3/3");
    EXPECT_EQ(last.index, 3u);

    auto all = serve::parseShardSpec("1/1");
    EXPECT_TRUE(all.isAll());
}

TEST(ShardSpec, RejectsMalformedSpecs)
{
    // Satellite: 0-based indices, out-of-range, non-numeric, N=0 and
    // missing '/' are all argument errors.
    EXPECT_THROW(serve::parseShardSpec("0/3"), FatalError);
    EXPECT_THROW(serve::parseShardSpec("4/3"), FatalError);
    EXPECT_THROW(serve::parseShardSpec("x/y"), FatalError);
    EXPECT_THROW(serve::parseShardSpec("1/0"), FatalError);
    EXPECT_THROW(serve::parseShardSpec("3"), FatalError);
    EXPECT_THROW(serve::parseShardSpec(""), FatalError);
    EXPECT_THROW(serve::parseShardSpec("1/"), FatalError);
    EXPECT_THROW(serve::parseShardSpec("/3"), FatalError);
    EXPECT_THROW(serve::parseShardSpec("-1/3"), FatalError);
    EXPECT_THROW(serve::parseShardSpec("1/3/5"), FatalError);
    EXPECT_THROW(serve::parseShardSpec("1 /3"), FatalError);
}

TEST(ShardOf, IsAStableCompletePartition)
{
    auto suite = workloads::mibenchSuite();
    for (unsigned count : {1u, 2u, 3u, 7u}) {
        for (const auto &w : suite) {
            unsigned s = serve::shardOf(w.name(), count);
            EXPECT_LT(s, count);
            // Stable: depends on nothing but name and count.
            EXPECT_EQ(s, serve::shardOf(w.name(), count));
        }
    }
    // Known anchors so the hash can never silently change (these pin
    // the on-disk shard assignment across releases).
    EXPECT_EQ(serve::shardOf("crc32/small", 1), 0u);
    unsigned two = serve::shardOf("crc32/small", 2);
    EXPECT_EQ(two, serve::shardOf("crc32/small", 2));
}

TEST(FilterShard, ShardsAreADisjointCoverInBatchOrder)
{
    auto all = smallBatch();
    for (unsigned count : {1u, 2u, 4u}) {
        std::set<size_t> seen;
        std::string hash;
        for (unsigned i = 1; i <= count; ++i) {
            auto b = serve::filterShard(all, {i, count});
            EXPECT_EQ(b.total, all.size());
            EXPECT_EQ(b.workloads.size(), b.indices.size());
            if (hash.empty())
                hash = b.suiteHash;
            EXPECT_EQ(b.suiteHash, hash);
            // Indices strictly increasing = full-batch order kept.
            for (size_t k = 0; k < b.indices.size(); ++k) {
                EXPECT_TRUE(seen.insert(b.indices[k]).second);
                EXPECT_EQ(b.workloads[k].name(),
                          all[b.indices[k]].name());
                if (k) {
                    EXPECT_LT(b.indices[k - 1], b.indices[k]);
                }
            }
        }
        EXPECT_EQ(seen.size(), all.size());
    }
    // The suite hash must notice a different resolved batch.
    auto fewer = std::vector<workloads::Workload>(all.begin(),
                                                  all.end() - 1);
    EXPECT_NE(serve::suiteHashOf(all), serve::suiteHashOf(fewer));
}

TEST(SuiteStatus, RoundTripsThroughJson)
{
    serve::ShardedBatch b = serve::filterShard(smallBatch(), {2, 2});
    std::vector<pipeline::RunStatus> statuses(b.workloads.size());
    for (size_t i = 0; i < statuses.size(); ++i) {
        statuses[i].index = i; // local indices, as processSuite yields
        statuses[i].workload = b.workloads[i].name();
        statuses[i].ok = i != 1;
        if (!statuses[i].ok)
            statuses[i].error = "synthetic failure";
    }
    auto status = serve::makeSuiteStatus(b, statuses);
    EXPECT_EQ(status.total, b.total);
    EXPECT_EQ(status.suiteHash, b.suiteHash);
    // Remapped to global indices.
    for (size_t i = 0; i < status.workloads.size(); ++i)
        EXPECT_EQ(status.workloads[i].index, b.indices[i]);

    auto parsed = serve::SuiteStatus::fromJson(
        Json::parse(status.serialize()));
    EXPECT_EQ(parsed.serialize(), status.serialize());
    EXPECT_EQ(parsed.workloads.size(), status.workloads.size());
    EXPECT_FALSE(parsed.workloads.empty());
}

TEST(ShardMerge, UnionOfShardsIsByteIdenticalToUnsharded)
{
    auto all = smallBatch();
    ScratchDir dir("shard_merge");

    // The reference: one unsharded cold run.
    runShard(all, {1, 1}, dir.sub("full"), dir.sub("cache_full"), 2);

    for (unsigned count : {1u, 2u, 4u}) {
        SCOPED_TRACE("count=" + std::to_string(count));
        std::string tag = std::to_string(count);
        std::vector<std::string> shardDirs;
        for (unsigned i = 1; i <= count; ++i) {
            std::string out = dir.sub("s" + tag + "_" + std::to_string(i));
            // Distinct thread counts and a shared cold cache: output
            // bytes must depend on neither.
            runShard(all, {i, count}, out, dir.sub("cache_" + tag),
                     1 + i % 3);
            shardDirs.push_back(out);
        }
        std::string merged = dir.sub("merged" + tag);
        auto res = serve::mergeSuiteDirs(merged, shardDirs);
        EXPECT_EQ(res.shards, count);
        EXPECT_EQ(res.workloads, all.size());
        EXPECT_EQ(res.failed, 0u);
        EXPECT_EQ(res.files, 2 * all.size());
        expectIdenticalDirs(dir.sub("full"), merged);
    }

    // Warm re-run of every shard against its now-hot cache must still
    // merge to the same bytes (the status artifact may not leak cache
    // provenance).
    std::vector<std::string> warmDirs;
    for (unsigned i = 1; i <= 2; ++i) {
        std::string out = dir.sub("warm_" + std::to_string(i));
        runShard(all, {i, 2}, out, dir.sub("cache_2"), 4);
        warmDirs.push_back(out);
    }
    auto res = serve::mergeSuiteDirs(dir.sub("merged_warm"), warmDirs);
    EXPECT_EQ(res.workloads, all.size());
    expectIdenticalDirs(dir.sub("full"), dir.sub("merged_warm"));
}

TEST(ShardMerge, EmptyShardsStillMerge)
{
    // 4-way split of a 3-workload batch: at least one shard is empty
    // and must still produce a valid, mergeable status artifact.
    std::vector<workloads::Workload> tiny = {
        workloads::findWorkload("crc32/small"),
        workloads::findWorkload("bitcount/small"),
        workloads::findWorkload("stringsearch/small")};
    ScratchDir dir("shard_empty");
    runShard(tiny, {1, 1}, dir.sub("full"), "", 1);

    std::vector<std::string> shardDirs;
    size_t emptyShards = 0;
    for (unsigned i = 1; i <= 4; ++i) {
        auto b = serve::filterShard(tiny, {i, 4});
        emptyShards += b.workloads.empty();
        std::string out = dir.sub("s" + std::to_string(i));
        runShard(tiny, {i, 4}, out, "", 1);
        shardDirs.push_back(out);
    }
    EXPECT_GE(emptyShards, 1u);
    auto res = serve::mergeSuiteDirs(dir.sub("merged"), shardDirs);
    EXPECT_EQ(res.workloads, tiny.size());
    expectIdenticalDirs(dir.sub("full"), dir.sub("merged"));
}

TEST(ShardMerge, RejectsIncompleteOrMismatchedShards)
{
    auto all = smallBatch();
    ScratchDir dir("shard_bad");
    runShard(all, {1, 2}, dir.sub("s1"), "", 1);
    runShard(all, {2, 2}, dir.sub("s2"), "", 1);

    // Missing shard 2 of 2.
    EXPECT_THROW(serve::mergeSuiteDirs(dir.sub("m1"), {dir.sub("s1")}),
                 FatalError);
    // The same shard twice.
    EXPECT_THROW(serve::mergeSuiteDirs(dir.sub("m2"),
                                       {dir.sub("s1"), dir.sub("s1")}),
                 FatalError);
    // Shards of different resolved suites (different suiteHash).
    std::vector<workloads::Workload> other(all.begin(), all.end() - 1);
    runShard(other, {2, 2}, dir.sub("s2_other"), "", 1);
    EXPECT_THROW(
        serve::mergeSuiteDirs(dir.sub("m3"),
                              {dir.sub("s1"), dir.sub("s2_other")}),
        FatalError);
    // A directory without a status artifact at all.
    fs::create_directories(dir.sub("plain"));
    EXPECT_THROW(serve::mergeSuiteDirs(dir.sub("m4"),
                                       {dir.sub("s1"), dir.sub("plain")}),
                 FatalError);
}

} // namespace
} // namespace bsyn
