/** @file End-to-end integration tests: the paper's full Figure 1 flow on
 *  real suite workloads — profile, synthesize, distribute (serialize),
 *  recompile, evaluate, verify obfuscation. */

#include <gtest/gtest.h>

#include "pipeline/pipeline.hh"
#include "pipeline/session.hh"
#include "isa/lowering.hh"
#include "lang/frontend.hh"
#include "similarity/report.hh"
#include "support/error.hh"

namespace bsyn
{
namespace
{

synth::SynthesisOptions
testOptions()
{
    auto opts = pipeline::defaultSynthesisOptions();
    opts.targetInstructions = 40000;
    return opts;
}

/** Shared cache-less session for these tests. */
pipeline::Session &
testSession()
{
    static pipeline::Session session([] {
        pipeline::SessionOptions so;
        so.synthesis = testOptions();
        return so;
    }());
    return session;
}

/**
 * All workloads these tests touch, processed once through the Session
 * batch API so the suite both exercises the parallel path and
 * amortizes the synthesis cost across test cases.
 */
const pipeline::WorkloadRun &
batchRun(const std::string &name)
{
    static const std::vector<pipeline::WorkloadRun> runs =
        testSession().processSuite({
            workloads::findWorkload("crc32/small"),
            workloads::findWorkload("stringsearch/small"),
            workloads::findWorkload("dijkstra/small"),
            workloads::findWorkload("gsm/small1"),
        });
    for (const auto &r : runs)
        if (r.workload.name() == name)
            return r;
    fatal("batchRun: %s not in the batch", name.c_str());
}

TEST(EndToEnd, SuiteBatchIsByteIdenticalToSequential)
{
    // The scheduling contract of the batch API: thread count changes
    // wall-clock, never results. Clones and profiles from a parallel
    // session batch must match a sequential (threads = 1) session batch
    // byte for byte, each must match a direct Session::process() call
    // with the per-workload derived seed, and the legacy processSuite()
    // free function must agree with both.
    std::vector<workloads::Workload> ws{
        workloads::findWorkload("crc32/small"),
        workloads::findWorkload("bitcount/small"),
        workloads::findWorkload("basicmath/small"),
    };
    pipeline::SessionOptions par;
    par.synthesis = testOptions();
    par.threads = 4;
    pipeline::SessionOptions seq = par;
    seq.threads = 1;
    pipeline::Session parSession(par), seqSession(seq);

    auto a = parSession.processSuite(ws);
    auto b = seqSession.processSuite(ws);
    ASSERT_EQ(a.size(), ws.size());
    ASSERT_EQ(b.size(), ws.size());
    for (size_t i = 0; i < ws.size(); ++i) {
        EXPECT_EQ(a[i].workload.name(), ws[i].name());
        EXPECT_EQ(a[i].synthetic.cSource, b[i].synthetic.cSource)
            << ws[i].name();
        EXPECT_EQ(a[i].profile.serialize(), b[i].profile.serialize())
            << ws[i].name();
    }

    auto direct = testOptions();
    direct.seed = pipeline::deriveWorkloadSeed(direct.seed, ws[0].name());
    auto one = parSession.process(ws[0], direct);
    EXPECT_EQ(one.synthetic.cSource, a[0].synthetic.cSource);

    // Legacy free-function shim produces the same bytes.
    pipeline::SuiteOptions legacy;
    legacy.synthesis = testOptions();
    legacy.threads = 2;
    auto c = pipeline::processSuite(ws, legacy);
    ASSERT_EQ(c.size(), ws.size());
    for (size_t i = 0; i < ws.size(); ++i)
        EXPECT_EQ(c[i].synthetic.cSource, a[i].synthetic.cSource);
}

TEST(EndToEnd, Crc32CloneBehavesLikeTheOriginal)
{
    const auto &w = workloads::findWorkload("crc32/small");
    const auto &run = batchRun("crc32/small");

    // Reduction: the clone is much shorter running.
    uint64_t clone_insts =
        pipeline::measureInstructions(run.synthetic.cSource);
    EXPECT_LT(clone_insts * 2, run.profile.dynamicInstructions);

    // Mix fidelity.
    ir::Module clone = lang::compile(run.synthetic.cSource, "clone");
    auto clone_prof = profile::profileModule(clone);
    EXPECT_NEAR(clone_prof.mix.loadFraction(),
                run.profile.mix.loadFraction(), 0.15);
    EXPECT_NEAR(clone_prof.mix.storeFraction(),
                run.profile.mix.storeFraction(), 0.15);

    // Obfuscation: the detectors see no meaningful similarity.
    auto report =
        similarity::compareSources(w.source, run.synthetic.cSource);
    EXPECT_TRUE(report.hidesProprietaryInformation())
        << "winnow=" << report.winnow << " tiling=" << report.tiling;
}

TEST(EndToEnd, ProfileSurvivesDistribution)
{
    // The "benchmark distribution" arrow of Fig 1: serialize the profile,
    // load it elsewhere, synthesize from the copy — same clone.
    const auto &w = workloads::findWorkload("bitcount/small");
    ir::Module m = workloads::compileWorkload(w);
    auto prof = profile::profileModule(m);

    auto restored =
        profile::StatisticalProfile::deserialize(prof.serialize());
    auto opts = testOptions();
    auto a = synth::synthesize(prof, opts);
    auto b = synth::synthesize(restored, opts);
    EXPECT_EQ(a.cSource, b.cSource);
}

TEST(EndToEnd, CloneTracksOptimizationSensitivity)
{
    // Fig 5's property: both original and clone lose a sizable share of
    // dynamic instructions from O0 to O2.
    const auto &w = workloads::findWorkload("stringsearch/small");
    const auto &run = batchRun("stringsearch/small");

    auto count = [&](const std::string &src, opt::OptLevel lvl) {
        return pipeline::runSource(src, "x", lvl, isa::targetX86())
            .instructions;
    };
    double orig_ratio =
        double(count(w.source, opt::OptLevel::O2)) /
        double(count(w.source, opt::OptLevel::O0));
    double syn_ratio =
        double(count(run.synthetic.cSource, opt::OptLevel::O2)) /
        double(count(run.synthetic.cSource, opt::OptLevel::O0));
    EXPECT_LT(orig_ratio, 0.9);
    EXPECT_LT(syn_ratio, 0.9);
    EXPECT_NEAR(orig_ratio, syn_ratio, 0.30);
}

TEST(EndToEnd, CloneTracksCachePressureDirection)
{
    // dijkstra is the cache-sensitive benchmark (Fig 7): its clone must
    // also show a hit-rate gap between small and large caches.
    const auto &w = workloads::findWorkload("dijkstra/small");
    const auto &run = batchRun("dijkstra/small");

    auto hit_rates = [&](const std::string &src) {
        ir::Module m = lang::compile(src, "hr");
        isa::LoweringOptions lo;
        lo.applyFusion = false;
        auto prog = isa::lower(m, isa::targetX86(), lo);
        struct Sweeper : sim::ExecObserver
        {
            sim::CacheSweep sweep{sim::CacheSweep::paperSweep()};
            void onInstruction(int, const isa::MInst &) override {}
            void
            onMemAccess(int, uint64_t addr, uint32_t size, bool,
                        uint64_t) override
            {
                sweep.access(addr, size);
            }
            void onBranch(int, bool) override {}
        } obs;
        sim::execute(prog, &obs);
        return std::pair<double, double>(
            obs.sweep.at(0).stats().hitRate(),   // 1 KB
            obs.sweep.at(5).stats().hitRate());  // 32 KB
    };
    auto [orig_small, orig_big] = hit_rates(w.source);
    auto [syn_small, syn_big] = hit_rates(run.synthetic.cSource);
    EXPECT_GT(orig_big, orig_small);
    EXPECT_GE(syn_big + 1e-9, syn_small);
}

TEST(EndToEnd, TimingModelRunsCloneOnAllMachines)
{
    const auto &run = batchRun("gsm/small1");
    for (const auto &machine : sim::paperMachines()) {
        auto t = pipeline::timeOnMachine(run.synthetic.cSource, "clone",
                                         opt::OptLevel::O2, machine);
        EXPECT_GT(t.cycles, 0u) << machine.name;
        EXPECT_GT(t.instructions, 0u) << machine.name;
        EXPECT_LT(t.cpi(), 20.0) << machine.name;
    }
}

} // namespace
} // namespace bsyn
