/** @file Tests for the workload-family generator subsystem: registry
 *  and knob-schema validation, generation determinism (byte-identical
 *  source and profile JSON for a fixed (family, knobs, seed) at any
 *  thread count, zero recomputation on a warm cache), exact
 *  expected-output correctness of every family's C++ mirror at -O0 and
 *  -O2, differential engine/profile identity over an instance of every
 *  family, phase_shift's per-phase instruction-mix deltas, the
 *  generated-instance path through workloads::findWorkload(), and the
 *  parallel calibration ladder's schedule independence. */

#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "gen/registry.hh"
#include "isa/lowering.hh"
#include "pipeline/pipeline.hh"
#include "pipeline/run_sink.hh"
#include "pipeline/session.hh"
#include "profile/profiler.hh"
#include "support/error.hh"
#include "support/string_util.hh"
#include "support/thread_pool.hh"

namespace fs = std::filesystem;

namespace bsyn
{
namespace
{

/** Small, fast instances of every family (same shapes, reduced work)
 *  so the heavier matrix tests stay inside the suite budget. */
gen::KnobValues
fastKnobs(const std::string &family)
{
    if (family == "pointer_chase")
        return {{"nodes", 1024}, {"steps", 20000}};
    if (family == "branch_maze")
        return {{"iters", 5000}};
    if (family == "fp_kernel")
        return {{"size", 256}, {"sweeps", 10}};
    if (family == "stream_mix")
        return {{"wset_log2", 10}, {"iters", 10000}};
    if (family == "phase_shift")
        return {{"work", 2000}, {"rounds", 2}};
    return {};
}

std::vector<std::string>
familyNames()
{
    return gen::Registry::global().names();
}

TEST(GenRegistry, HasTheFiveFamilies)
{
    auto names = familyNames();
    ASSERT_EQ(names.size(), 5u);
    EXPECT_EQ(names[0], "pointer_chase");
    EXPECT_EQ(names[1], "branch_maze");
    EXPECT_EQ(names[2], "fp_kernel");
    EXPECT_EQ(names[3], "stream_mix");
    EXPECT_EQ(names[4], "phase_shift");
    for (const auto &n : names) {
        const gen::Family *f = gen::Registry::global().find(n);
        ASSERT_NE(f, nullptr) << n;
        EXPECT_FALSE(f->knobs().empty()) << n;
        EXPECT_FALSE(f->presets().empty()) << n;
    }
}

TEST(GenRegistry, RequireListsFamiliesOnMiss)
{
    try {
        gen::Registry::global().require("no_such_family");
        FAIL() << "require() did not throw";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("pointer_chase"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("phase_shift"),
                  std::string::npos);
    }
}

TEST(GenKnobs, DefaultsResolveAndValidate)
{
    const gen::Family &f =
        gen::Registry::global().require("pointer_chase");
    auto resolved = f.resolve({});
    EXPECT_EQ(resolved.at("nodes"), 4096);
    EXPECT_EQ(resolved.size(), f.knobs().size());

    // Overrides stick; unknown knobs and out-of-range values are
    // fatal, with the knob list in the message.
    auto shifted = f.resolve({{"nodes", 64}});
    EXPECT_EQ(shifted.at("nodes"), 64);
    EXPECT_THROW(f.resolve({{"bogus", 1}}), FatalError);
    EXPECT_THROW(f.resolve({{"nodes", 1}}), FatalError);
    EXPECT_THROW(f.resolve({{"nodes", 1 << 30}}), FatalError);
    try {
        f.resolve({{"bogus", 1}});
        FAIL();
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("nodes"),
                  std::string::npos);
    }
}

TEST(GenKnobs, SpecParsing)
{
    auto spec = gen::parseSpec("stream_mix,stride=9,seed=12");
    EXPECT_EQ(spec.family, "stream_mix");
    EXPECT_EQ(spec.knobs.at("stride"), 9);
    EXPECT_TRUE(spec.hasSeed);
    EXPECT_EQ(spec.seed, 12u);

    // The instance-name form parses identically.
    auto named = gen::parseSpec("stream_mix/stride=9,seed=12");
    EXPECT_EQ(named.family, spec.family);
    EXPECT_EQ(named.knobs, spec.knobs);

    auto bare = gen::parseSpec("fp_kernel");
    EXPECT_EQ(bare.family, "fp_kernel");
    EXPECT_TRUE(bare.knobs.empty());
    EXPECT_FALSE(bare.hasSeed);

    // Seeds span the full uint64 range: the canonical names a sample
    // prints (derived seeds regularly exceed int64) must round-trip.
    auto big = gen::parseSpec(
        "stream_mix/stride=9,seed=17433269929995200206");
    EXPECT_TRUE(big.hasSeed);
    EXPECT_EQ(big.seed, 17433269929995200206ull);

    EXPECT_THROW(gen::parseSpec("fp_kernel,radius"), FatalError);
    EXPECT_THROW(gen::parseSpec("fp_kernel,radius=x"), FatalError);
    EXPECT_THROW(gen::parseSpec("fp_kernel,radius=1,radius=2"),
                 FatalError);
    EXPECT_THROW(gen::parseSpec(",radius=1"), FatalError);
}

TEST(GenDeterminism, SameInputsSameBytes)
{
    for (const auto &name : familyNames()) {
        const gen::Family &f = gen::Registry::global().require(name);
        auto a = f.make(fastKnobs(name), 99);
        auto b = f.make(fastKnobs(name), 99);
        EXPECT_EQ(a.source, b.source) << name;
        EXPECT_EQ(a.name(), b.name()) << name;
        EXPECT_EQ(a.expectedOutput, b.expectedOutput) << name;

        // A different seed changes the program (every family embeds
        // its seed-derived RNG state), and the name tracks it.
        auto c = f.make(fastKnobs(name), 100);
        EXPECT_NE(a.source, c.source) << name;
        EXPECT_NE(a.name(), c.name()) << name;
    }
}

TEST(GenDeterminism, CanonicalNameEmbedsEveryKnobAndSeed)
{
    const gen::Family &f =
        gen::Registry::global().require("pointer_chase");
    auto w = f.make({{"nodes", 64}}, 7);
    EXPECT_EQ(w.benchmark, "pointer_chase");
    EXPECT_EQ(w.input, "nodes=64,steps=250000,shuffle=1,seed=7");
}

TEST(GenDeterminism, RegistrySampleIsStable)
{
    auto a = gen::Registry::global().sample(2, 0xb5e9c0de);
    auto b = gen::Registry::global().sample(2, 0xb5e9c0de);
    ASSERT_EQ(a.size(), 2 * familyNames().size());
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].name(), b[i].name());
        EXPECT_EQ(a[i].source, b[i].source);
    }
    // A different base seed moves every instance.
    auto c = gen::Registry::global().sample(2, 1);
    EXPECT_NE(a[0].name(), c[0].name());

    // Every sampled instance's printed name resolves back to the
    // byte-identical workload (full-range uint64 seeds included).
    for (const auto &w : a) {
        const auto &back = workloads::findWorkload(w.name());
        EXPECT_EQ(back.source, w.source) << w.name();
        EXPECT_EQ(back.expectedOutput, w.expectedOutput) << w.name();
    }
}

class FamilyCorrectness
    : public ::testing::TestWithParam<std::string>
{};

TEST_P(FamilyCorrectness, ExactExpectedOutputAndLevelInvariance)
{
    const gen::Family &f =
        gen::Registry::global().require(GetParam());
    auto w = f.make(fastKnobs(GetParam()), 42);

    // The generator's C++ mirror must predict the program's printf
    // line EXACTLY (stronger than the suite's substring check).
    auto o0 = pipeline::runSource(w.source, w.name(), opt::OptLevel::O0,
                                  isa::targetX86());
    EXPECT_EQ(o0.output, w.expectedOutput + "\n") << w.name();
    EXPECT_GT(o0.instructions, 10000u) << w.name();

    auto o2 = pipeline::runSource(w.source, w.name(), opt::OptLevel::O2,
                                  isa::targetX86());
    EXPECT_EQ(o2.output, o0.output) << w.name();
    EXPECT_LT(o2.instructions, o0.instructions) << w.name();
}

TEST_P(FamilyCorrectness, EveryPresetRunsCorrectly)
{
    const gen::Family &f =
        gen::Registry::global().require(GetParam());
    uint64_t seed = 3;
    for (const auto &preset : f.presets()) {
        auto w = f.make(preset, seed++);
        auto stats = pipeline::runSource(
            w.source, w.name(), opt::OptLevel::O0, isa::targetX86());
        EXPECT_EQ(stats.output, w.expectedOutput + "\n") << w.name();
    }
}

TEST_P(FamilyCorrectness, DifferentialEngineAndProfileIdentity)
{
    // Reference decode-per-step interpreter vs the predecoded engine,
    // and the Observer profiler vs the fused instrumented mode, must
    // agree bit for bit on generated programs too — at -O0 and -O2.
    const gen::Family &f =
        gen::Registry::global().require(GetParam());
    auto w = f.make(fastKnobs(GetParam()), 7);
    for (auto level : {opt::OptLevel::O0, opt::OptLevel::O2}) {
        ir::Module m = pipeline::compileSource(w.source, w.name(), level);
        auto prog = isa::lower(m, isa::targetX86());
        auto ref = sim::executeReference(prog);
        auto fast = sim::execute(prog);
        EXPECT_TRUE(ref == fast)
            << w.name() << " at " << opt::optLevelName(level);

        profile::ProfileOptions observer;
        observer.engine = profile::ProfileEngine::Observer;
        auto obsProf = profile::profileModule(m, observer);
        auto fusedProf = profile::profileModule(m);
        EXPECT_EQ(obsProf.serialize(), fusedProf.serialize())
            << w.name() << " at " << opt::optLevelName(level);
    }
}

std::string
familyTestName(const ::testing::TestParamInfo<std::string> &info)
{
    return info.param;
}

INSTANTIATE_TEST_SUITE_P(All, FamilyCorrectness,
                         ::testing::ValuesIn(familyNames()),
                         familyTestName);

TEST(GenPhaseShift, PerPhaseMixDeltasAreVisibleInTheProfile)
{
    const gen::Family &f =
        gen::Registry::global().require("phase_shift");
    gen::KnobValues base = {{"work", 4000}, {"rounds", 2},
                            {"phases", 3}};
    auto profileOf = [&](long long only) {
        gen::KnobValues k = base;
        k["only_phase"] = only;
        auto w = f.make(k, 11);
        ir::Module m = workloads::compileWorkload(w);
        return profile::profileModule(m);
    };

    auto alu = profileOf(0);
    auto fp = profileOf(1);
    auto mem = profileOf(2);
    auto all = profileOf(-1);

    // The FP phase is FP-dense, the others are not.
    EXPECT_GT(fp.mix.fpFraction(), 0.15);
    EXPECT_LT(alu.mix.fpFraction(), 0.02);
    EXPECT_LT(mem.mix.fpFraction(), 0.02);

    // The memory phase misses far more than the ALU phase (random
    // walks over 256 KB vs a resident 16 KB buffer) — at -O0 every
    // phase is load-heavy (locals live in memory), so the cache
    // behavior, not the load fraction, is what separates them.
    auto missRate = [](const profile::StatisticalProfile &p) {
        double accesses = 0, misses = 0;
        for (const auto &b : p.sfgl.blocks)
            for (const auto &d : b.code)
                if ((d.readsMem || d.writesMem) && b.execCount > 0) {
                    accesses += double(b.execCount);
                    misses += double(b.execCount) *
                              profile::missRateForClass(d.missClass);
                }
        return accesses > 0 ? misses / accesses : 0.0;
    };
    EXPECT_LT(missRate(alu), 0.02);
    EXPECT_GT(missRate(mem), 0.08);
    EXPECT_GT(missRate(mem), missRate(alu) * 10);

    // The multi-phase program blends the phases: its FP fraction sits
    // strictly between the FP-only and ALU-only extremes, so the
    // drift is visible in (and recoverable from) the profile.
    EXPECT_GT(all.mix.fpFraction(), alu.mix.fpFraction() + 0.02);
    EXPECT_LT(all.mix.fpFraction(), fp.mix.fpFraction() - 0.02);
}

TEST(GenLookup, FindWorkloadResolvesGeneratedInstances)
{
    const auto &w = workloads::findWorkload(
        "pointer_chase/nodes=64,steps=1000,seed=5");
    EXPECT_EQ(w.benchmark, "pointer_chase");
    EXPECT_FALSE(w.source.empty());
    EXPECT_TRUE(startsWith(w.expectedOutput, "pointer_chase="));

    // Interned: the same name returns the same stable reference.
    const auto &again = workloads::findWorkload(
        "pointer_chase/nodes=64,steps=1000,seed=5");
    EXPECT_EQ(&w, &again);

    // Known family, bad knobs: fatal (not a silent fallback).
    EXPECT_THROW(
        workloads::findWorkload("pointer_chase/bogus=1,seed=5"),
        FatalError);
}

TEST(GenLookup, MissListsSuiteInstancesAndFamilies)
{
    try {
        workloads::findWorkload("nope/large");
        FAIL() << "findWorkload did not throw";
    } catch (const FatalError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("crc32/large"), std::string::npos) << msg;
        EXPECT_NE(msg.find("susan/small3"), std::string::npos) << msg;
        EXPECT_NE(msg.find("pointer_chase"), std::string::npos) << msg;
        EXPECT_NE(msg.find("phase_shift"), std::string::npos) << msg;
    }
}

/** Fresh scratch directory (same idiom as test_session). */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &tag)
        : path_(std::string(::testing::TempDir()) + "bsyn_gen_" + tag +
                "_" + std::to_string(::getpid()))
    {
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~ScratchDir()
    {
        std::error_code ec;
        fs::remove_all(path_, ec);
    }
    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

std::vector<workloads::Workload>
fastSample()
{
    std::vector<workloads::Workload> out;
    uint64_t seed = 21;
    for (const auto &name : familyNames())
        out.push_back(gen::Registry::global().require(name).make(
            fastKnobs(name), seed++));
    return out;
}

TEST(GenPipeline, SuiteRunIsByteIdenticalAcrossThreadCounts)
{
    // The acceptance criterion: same family+knobs+seed implies
    // byte-identical generated source, profile JSON and clone source
    // no matter how the batch is parallelized.
    auto ws = fastSample();
    synth::SynthesisOptions fast = pipeline::defaultSynthesisOptions();
    fast.targetInstructions = 20000;

    ScratchDir outSeq("seq"), outPar("par");
    for (auto [threads, dir] :
         {std::pair<unsigned, const ScratchDir *>{1u, &outSeq},
          std::pair<unsigned, const ScratchDir *>{3u, &outPar}}) {
        pipeline::SessionOptions so;
        so.threads = threads;
        so.synthesis = fast;
        pipeline::Session session(std::move(so));
        pipeline::DirectorySink sink(dir->str());
        auto statuses = session.processSuite(ws, sink);
        for (const auto &st : statuses)
            EXPECT_TRUE(st.ok) << st.workload << ": " << st.error;
        EXPECT_EQ(sink.written(), ws.size());
    }

    size_t files = 0;
    for (const auto &entry : fs::directory_iterator(outSeq.str())) {
        std::string name = entry.path().filename().string();
        EXPECT_EQ(readFile(outSeq.str() + "/" + name),
                  readFile(outPar.str() + "/" + name))
            << name;
        ++files;
    }
    EXPECT_EQ(files, 2 * ws.size());
}

TEST(GenPipeline, WarmCacheRecomputesNothingForGeneratedSuite)
{
    // Generation is cache-keyed by the canonical instance name plus
    // the source bytes, so a warm re-run of a generated suite must
    // serve every profile and clone from the cache.
    auto ws = fastSample();
    synth::SynthesisOptions fast = pipeline::defaultSynthesisOptions();
    fast.targetInstructions = 20000;
    ScratchDir cache("cache");

    pipeline::SessionOptions so;
    so.threads = 2;
    so.cacheDir = cache.str();
    so.synthesis = fast;
    pipeline::Session session(std::move(so));

    pipeline::CollectSink cold;
    session.processSuite(ws, cold);
    auto coldStats = session.cacheStats();
    EXPECT_EQ(coldStats.profileMisses, ws.size());
    EXPECT_EQ(coldStats.synthMisses, ws.size());

    pipeline::CollectSink warm;
    auto statuses = session.processSuite(ws, warm);
    auto warmStats = session.cacheStats();
    EXPECT_EQ(warmStats.profileMisses, ws.size()) << "re-profiled";
    EXPECT_EQ(warmStats.synthMisses, ws.size()) << "re-synthesized";
    EXPECT_EQ(warmStats.profileHits, ws.size());
    EXPECT_EQ(warmStats.synthHits, ws.size());
    for (const auto &st : statuses) {
        EXPECT_TRUE(st.profileCached) << st.workload;
        EXPECT_TRUE(st.synthCached) << st.workload;
    }

    auto a = cold.takeRuns(), b = warm.takeRuns();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].synthetic.cSource, b[i].synthetic.cSource);
        EXPECT_EQ(a[i].profile.serialize(), b[i].profile.serialize());
    }
}

TEST(GenPipeline, GeneratedCloneRunsEndToEnd)
{
    // process(): profile -> synthesize; the clone must compile, run to
    // completion and print the synthetic checksum line.
    pipeline::Session session;
    synth::SynthesisOptions fast = pipeline::defaultSynthesisOptions();
    fast.targetInstructions = 20000;
    for (const auto &w : fastSample()) {
        auto run = session.process(w, fast);
        ASSERT_FALSE(run.synthetic.cSource.empty()) << w.name();
        auto stats = pipeline::runSource(run.synthetic.cSource,
                                         w.name() + ".clone",
                                         opt::OptLevel::O0,
                                         isa::targetX86());
        EXPECT_NE(stats.output.find("bsyn_checksum="),
                  std::string::npos)
            << w.name();
        EXPECT_GT(stats.instructions, 1000u) << w.name();
    }
}

TEST(GenCalibration, ParallelLadderMatchesSerialBytes)
{
    // The candidate ladder is schedule-independent: synthesizing with
    // a concurrent runner yields the same bytes as the serial loop,
    // including when calibration actually retunes (tiny budget forces
    // the first measurement far out of band).
    const auto &w = workloads::findWorkload("crc32/small");
    ir::Module m = workloads::compileWorkload(w);
    auto prof = profile::profileModule(m);

    synth::SynthesisOptions opts;
    opts.targetInstructions = 3000;
    opts.calibrationRounds = 3;

    auto serial = synth::synthesize(prof, opts,
                                    &pipeline::measureInstructions);

    ThreadPool pool(3);
    auto parallel = synth::synthesize(
        prof, opts, &pipeline::measureInstructions,
        [&pool](size_t n, const std::function<void(size_t)> &fn) {
            pool.parallelFor(n, fn);
        });
    EXPECT_EQ(serial.cSource, parallel.cSource);
    EXPECT_EQ(serial.reductionFactor, parallel.reductionFactor);

    // And the ladder still lands the budget within the usual band.
    uint64_t count = pipeline::measureInstructions(parallel.cSource);
    EXPECT_GT(count, opts.targetInstructions / 4);
    EXPECT_LT(count, opts.targetInstructions * 4);
}

} // namespace
} // namespace bsyn
