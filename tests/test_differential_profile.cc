/**
 * @file
 * Differential tests for the fused instrumented profiling mode: every
 * suite workload and the shared fuzz corpus are profiled by both the
 * golden ExecObserver-based profiler and the fused dense-counter mode,
 * at -O0 and -O2, and the results — serialized profile JSON, SFGL edge
 * sets, and the ExecStats of the underlying run — must be identical
 * byte for byte. The profile JSON is the paper's distribution
 * artifact; this suite is what lets the fast mode produce it.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "gen/registry.hh"
#include "isa/lowering.hh"
#include "lang/frontend.hh"
#include "opt/pipeline.hh"
#include "pipeline/session.hh"
#include "profile/profiler.hh"
#include "sim/decoded_program.hh"
#include "workloads/suite.hh"

#include "program_fuzzer.hh"

namespace bsyn
{
namespace
{

/** One instance per benchmark — the profile differential does not need
 *  every input size of the same kernel. */
const std::vector<workloads::Workload> &
representativeSuite()
{
    static const std::vector<workloads::Workload> suite = [] {
        std::vector<workloads::Workload> out;
        std::string last;
        for (const auto &w : workloads::mibenchSuite()) {
            if (w.benchmark == last)
                continue;
            last = w.benchmark;
            out.push_back(w);
        }
        return out;
    }();
    return suite;
}

profile::ProfileOptions
observerOptions()
{
    profile::ProfileOptions opts;
    opts.engine = profile::ProfileEngine::Observer;
    return opts;
}

/** Flatten a profile's SFGL edges into comparable (from, to, count)
 *  triples. */
std::vector<std::tuple<int, int, uint64_t>>
edgeSet(const profile::StatisticalProfile &prof)
{
    std::vector<std::tuple<int, int, uint64_t>> out;
    for (const auto &b : prof.sfgl.blocks)
        for (const auto &e : b.succs)
            out.emplace_back(b.id, e.to, e.count);
    return out;
}

void
expectProfilesIdentical(const ir::Module &m, const std::string &label)
{
    auto fused = profile::profileModule(m); // default: fused
    auto ref = profile::profileModule(m, observerOptions());
    EXPECT_EQ(ref.serialize(), fused.serialize()) << label;
    EXPECT_EQ(edgeSet(ref), edgeSet(fused)) << label;
    EXPECT_EQ(ref.dynamicInstructions, fused.dynamicInstructions)
        << label;
}

class WorkloadProfileDifferential
    : public ::testing::TestWithParam<std::tuple<size_t, opt::OptLevel>>
{};

TEST_P(WorkloadProfileDifferential, ProfileJsonAndEdgesIdentical)
{
    const auto &[idx, level] = GetParam();
    const workloads::Workload &w = representativeSuite()[idx];
    ir::Module m = lang::compile(w.source, w.name());
    opt::optimize(m, level);
    expectProfilesIdentical(m, w.name());
}

TEST_P(WorkloadProfileDifferential, InstrumentedExecStatsIdentical)
{
    const auto &[idx, level] = GetParam();
    const workloads::Workload &w = representativeSuite()[idx];
    ir::Module m = lang::compile(w.source, w.name());
    opt::optimize(m, level);
    // Default lowering (fusion on) so fused memory operands exercise
    // the instrumented handlers too.
    isa::MachineProgram prog = isa::lower(m, isa::targetX86());

    sim::ExecStats ref = sim::executeReference(prog);
    sim::DecodedProgram decoded(prog);
    sim::InstrumentedCounters c;
    sim::ExecStats inst =
        sim::executeInstrumented(decoded, sim::CacheConfig(), c);
    EXPECT_TRUE(ref == inst) << w.name();

    // The dense counters must agree with the aggregate stats.
    uint64_t retired = 0, accesses = 0, branches = 0, taken = 0;
    for (size_t pc = 0; pc < prog.size(); ++pc) {
        retired += c.execCount[pc];
        accesses += c.memAccesses[pc];
        branches += c.branch[pc].executions;
        taken += c.branch[pc].taken;
    }
    EXPECT_EQ(retired, inst.instructions) << w.name();
    EXPECT_EQ(accesses, inst.memReads + inst.memWrites) << w.name();
    EXPECT_EQ(branches, inst.branches) << w.name();
    EXPECT_EQ(taken, inst.takenBranches) << w.name();
}

std::string
profileDiffName(const ::testing::TestParamInfo<
                WorkloadProfileDifferential::ParamType> &info)
{
    const auto &[idx, level] = info.param;
    std::string name = representativeSuite()[idx].benchmark;
    for (char &c : name)
        if (c == '/' || c == '-')
            c = '_';
    return name + "_" + opt::optLevelName(level);
}

INSTANTIATE_TEST_SUITE_P(
    Suite, WorkloadProfileDifferential,
    ::testing::Combine(
        ::testing::Range<size_t>(0, representativeSuite().size()),
        ::testing::Values(opt::OptLevel::O0, opt::OptLevel::O2)),
    profileDiffName);

// The same seed range as test_fuzz / test_differential_engine — one
// corpus, three differential properties.
class FuzzProfileDifferential : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(FuzzProfileDifferential, ProfileJsonIdenticalAtO0AndO2)
{
    ProgramFuzzer fuzzer(GetParam());
    std::string src = fuzzer.generate();
    for (auto level : {opt::OptLevel::O0, opt::OptLevel::O2}) {
        ir::Module m = lang::compile(src, "fuzz");
        opt::optimize(m, level);
        auto fused = profile::profileModule(m);
        auto ref = profile::profileModule(m, observerOptions());
        EXPECT_EQ(ref.serialize(), fused.serialize())
            << "seed " << GetParam() << " at "
            << opt::optLevelName(level) << "\n"
            << src;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzProfileDifferential,
                         ::testing::Range<uint64_t>(1, 41));

// ------------------------------------------------- slice determinism
//
// The slice stream is cut at retired-instruction checkpoints, never
// wall-clock, so the v3 phase list must be a pure function of the
// program: identical bytes whatever the session's thread count and
// whether the profile comes from a cold run or a warm artifact cache.

workloads::Workload
multiPhaseInstance()
{
    return gen::Registry::global().require("phase_shift").make(
        {{"phases", 3}, {"rounds", 1}, {"work", 20000}}, 7);
}

TEST(SliceDeterminism, FusedAndObserverAgreeOnMultiPhaseProfiles)
{
    ir::Module m = workloads::compileWorkload(multiPhaseInstance());
    auto fused = profile::profileModule(m);
    ASSERT_TRUE(fused.multiPhase());
    auto ref = profile::profileModule(m, observerOptions());
    EXPECT_EQ(ref.serialize(), fused.serialize());
}

TEST(SliceDeterminism, PhaseProfileBytesIdenticalAcrossThreadCounts)
{
    std::vector<workloads::Workload> batch = {
        multiPhaseInstance(),
        workloads::findWorkload("crc32/small"),
        workloads::findWorkload("bitcount/small"),
    };
    std::vector<std::string> ref;
    for (unsigned threads : {1u, 4u, 8u}) {
        pipeline::SessionOptions so;
        so.threads = threads;
        pipeline::Session session(std::move(so));
        std::vector<std::string> got(batch.size());
        session.parallelFor(batch.size(), [&](size_t i) {
            got[i] = session.profile(batch[i]).serialize();
        });
        if (ref.empty()) {
            ref = got;
            // The determinism claim must cover a real phase list.
            EXPECT_TRUE(profile::StatisticalProfile::deserialize(got[0])
                            .multiPhase());
            continue;
        }
        for (size_t i = 0; i < batch.size(); ++i)
            EXPECT_EQ(got[i], ref[i])
                << batch[i].name() << " at " << threads << " threads";
    }
}

TEST(SliceDeterminism, WarmCacheReplaysColdPhaseProfileBytes)
{
    char dir[] = "/tmp/bsyn_phase_cache_XXXXXX";
    ASSERT_NE(mkdtemp(dir), nullptr);
    auto w = multiPhaseInstance();

    std::string cold, warm;
    bool coldHit = true, warmHit = false;
    {
        pipeline::SessionOptions so;
        so.cacheDir = dir;
        pipeline::Session session(std::move(so));
        cold = session.profile(w, &coldHit).serialize();
    }
    {
        pipeline::SessionOptions so;
        so.cacheDir = dir;
        pipeline::Session session(std::move(so));
        warm = session.profile(w, &warmHit).serialize();
    }
    EXPECT_FALSE(coldHit);
    EXPECT_TRUE(warmHit);
    EXPECT_EQ(cold, warm);
    EXPECT_TRUE(
        profile::StatisticalProfile::deserialize(warm).multiPhase());
    std::filesystem::remove_all(dir);
}

/** CI smoke check: fused and reference must agree on one real
 *  workload (filtered as ProfileSmoke.* by the workflow). */
TEST(ProfileSmoke, FusedMatchesReferenceOnShaSmall)
{
    const auto &w = workloads::findWorkload("sha/small");
    ir::Module m = lang::compile(w.source, w.name());
    expectProfilesIdentical(m, w.name());

    // Belt and braces: the golden observer on the *reference*
    // decode-per-step interpreter agrees too.
    profile::ProfileOptions golden = observerOptions();
    golden.limits.engine = sim::ExecEngine::Reference;
    EXPECT_EQ(profile::profileModule(m, golden).serialize(),
              profile::profileModule(m).serialize());
}

} // namespace
} // namespace bsyn
