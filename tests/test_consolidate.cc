/** @file Benchmark-consolidation tests (paper §II-B.e). */

#include <gtest/gtest.h>

#include "pipeline/pipeline.hh"
#include "lang/frontend.hh"
#include "synth/consolidate.hh"

namespace bsyn
{
namespace
{

profile::StatisticalProfile
profileSource(const char *src, const char *name)
{
    ir::Module m = lang::compile(src, name);
    return profile::profileModule(m);
}

const char *intWorkload = R"(
uint t[512];
int main() {
  int i;
  for (i = 0; i < 3000; i++) t[i & 511] = t[(i + 3) & 511] * 5 + 1;
  printf("%u\n", t[0]);
  return 0;
})";

const char *fpWorkload = R"(
double d[512];
int main() {
  int i;
  for (i = 0; i < 3000; i++) d[i & 511] = d[(i + 1) & 511] * 1.25 + 0.5;
  printf("%d\n", (int)d[0]);
  return 0;
})";

TEST(Consolidate, CountsAndMixesAdd)
{
    auto a = profileSource(intWorkload, "int");
    auto b = profileSource(fpWorkload, "fp");
    auto merged = synth::consolidate({a, b}, "pair");
    EXPECT_EQ(merged.dynamicInstructions,
              a.dynamicInstructions + b.dynamicInstructions);
    EXPECT_EQ(merged.mix.total(), a.mix.total() + b.mix.total());
    EXPECT_EQ(merged.sfgl.blocks.size(),
              a.sfgl.blocks.size() + b.sfgl.blocks.size());
    EXPECT_EQ(merged.sfgl.loops.size(),
              a.sfgl.loops.size() + b.sfgl.loops.size());
}

TEST(Consolidate, RebasedIdsStayConsistent)
{
    auto a = profileSource(intWorkload, "int");
    auto b = profileSource(fpWorkload, "fp");
    auto merged = synth::consolidate({a, b}, "pair");
    int n = static_cast<int>(merged.sfgl.blocks.size());
    for (const auto &blk : merged.sfgl.blocks) {
        for (const auto &e : blk.succs) {
            EXPECT_GE(e.to, 0);
            EXPECT_LT(e.to, n);
        }
        if (blk.loopId >= 0) {
            EXPECT_LT(blk.loopId,
                      static_cast<int>(merged.sfgl.loops.size()));
        }
    }
    for (const auto &l : merged.sfgl.loops) {
        EXPECT_LT(l.header, n);
        for (int blk : l.blocks)
            EXPECT_LT(blk, n);
    }
}

TEST(Consolidate, SyntheticFromMergedProfileRuns)
{
    auto a = profileSource(intWorkload, "int");
    auto b = profileSource(fpWorkload, "fp");
    auto merged = synth::consolidate({a, b}, "pair");

    synth::SynthesisOptions opts;
    opts.targetInstructions = 8000;
    auto syn = synth::synthesize(merged, opts,
                                 &pipeline::measureInstructions);
    auto stats = pipeline::runSource(syn.cSource, "consolidated",
                                     opt::OptLevel::O0, isa::targetX86());
    EXPECT_GT(stats.instructions, 1000u);
    // The merged clone must exercise both integer and fp streams.
    EXPECT_NE(syn.cSource.find("mStream"), std::string::npos);
    EXPECT_NE(syn.cSource.find("dStream"), std::string::npos);
}

TEST(Consolidate, SingleProfileIsIdentityShaped)
{
    auto a = profileSource(intWorkload, "int");
    auto merged = synth::consolidate({a}, "solo");
    EXPECT_EQ(merged.dynamicInstructions, a.dynamicInstructions);
    EXPECT_EQ(merged.sfgl.blocks.size(), a.sfgl.blocks.size());
}

} // namespace
} // namespace bsyn
