/** @file Unit tests for the IR: CFG, dominators, loops, liveness,
 *  verifier. */

#include <gtest/gtest.h>

#include "ir/cfg.hh"
#include "ir/dominators.hh"
#include "ir/loops.hh"
#include "ir/printer.hh"
#include "ir/verifier.hh"
#include "support/error.hh"

namespace bsyn::ir
{
namespace
{

/** A diamond: 0 -> {1,2} -> 3. */
Function
diamond()
{
    Function fn;
    fn.name = "diamond";
    for (int i = 0; i < 4; ++i)
        fn.newBlock();
    int c = fn.newReg();
    fn.block(0).append(Instruction::movImm(c, 1));
    fn.block(0).term = Terminator::br(c, 1, 2);
    fn.block(1).term = Terminator::jmp(3);
    fn.block(2).term = Terminator::jmp(3);
    fn.block(3).term = Terminator::ret();
    return fn;
}

/** A doubly nested loop: 0 -> 1(outer hdr) -> 2(inner hdr) -> 3(inner
 *  latch) -> 2; 2 -> 4(outer latch) -> 1; 1 -> 5 exit. */
Function
nestedLoops()
{
    Function fn;
    fn.name = "nested";
    for (int i = 0; i < 6; ++i)
        fn.newBlock();
    int c = fn.newReg();
    fn.block(0).append(Instruction::movImm(c, 1));
    fn.block(0).term = Terminator::jmp(1);
    fn.block(1).term = Terminator::br(c, 2, 5);
    fn.block(2).term = Terminator::br(c, 3, 4);
    fn.block(3).term = Terminator::jmp(2);
    fn.block(4).term = Terminator::jmp(1);
    fn.block(5).term = Terminator::ret();
    return fn;
}

TEST(Cfg, PredsAndSuccs)
{
    Function fn = diamond();
    Cfg cfg(fn);
    EXPECT_EQ(cfg.succs(0).size(), 2u);
    EXPECT_EQ(cfg.preds(3).size(), 2u);
    EXPECT_TRUE(cfg.reachable(3));
    for (int b : {0, 1, 2, 3})
        EXPECT_TRUE(cfg.reachable(b));
}

TEST(Cfg, UnreachableBlockDetected)
{
    Function fn = diamond();
    int dead = fn.newBlock();
    fn.block(dead).term = Terminator::ret();
    Cfg cfg(fn);
    EXPECT_FALSE(cfg.reachable(dead));
}

TEST(Cfg, RpoStartsAtEntry)
{
    Function fn = nestedLoops();
    Cfg cfg(fn);
    ASSERT_FALSE(cfg.rpo().empty());
    EXPECT_EQ(cfg.rpo().front(), 0);
}

TEST(Dominators, DiamondJoinDominatedByEntry)
{
    Function fn = diamond();
    Cfg cfg(fn);
    Dominators dom(fn, cfg);
    EXPECT_TRUE(dom.dominates(0, 3));
    EXPECT_FALSE(dom.dominates(1, 3)); // join reachable around block 1
    EXPECT_EQ(dom.idom(3), 0);
    EXPECT_TRUE(dom.dominates(0, 0));
}

TEST(Dominators, LoopHeaderDominatesBody)
{
    Function fn = nestedLoops();
    Cfg cfg(fn);
    Dominators dom(fn, cfg);
    EXPECT_TRUE(dom.dominates(1, 4));
    EXPECT_TRUE(dom.dominates(2, 3));
    EXPECT_TRUE(dom.dominates(1, 2));
    EXPECT_FALSE(dom.dominates(2, 5));
}

TEST(Loops, FindsNestedLoopsWithDepths)
{
    Function fn = nestedLoops();
    Cfg cfg(fn);
    Dominators dom(fn, cfg);
    LoopForest loops(fn, cfg, dom);
    ASSERT_EQ(loops.size(), 2u);

    const Loop *outer = nullptr, *inner = nullptr;
    for (const auto &l : loops.loops()) {
        if (l.header == 1)
            outer = &l;
        if (l.header == 2)
            inner = &l;
    }
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(inner->parent, outer->id);
    EXPECT_EQ(outer->parent, -1);
    EXPECT_EQ(outer->depth, 1);
    EXPECT_EQ(inner->depth, 2);
    // Inner membership: blocks 2 and 3 only.
    EXPECT_EQ(inner->blocks.size(), 2u);
    // Innermost loop of block 3 is the inner loop.
    EXPECT_EQ(loops.loopOf(3), inner->id);
    EXPECT_EQ(loops.loopOf(4), outer->id);
    EXPECT_EQ(loops.loopOf(5), -1);
}

TEST(Loops, SelfLoopDoesNotSwallowTheFunction)
{
    // Regression: a do-while lowers to a block that is its own latch;
    // the loop body must be exactly that block, not everything that
    // reaches it.
    Function fn;
    fn.name = "dowhile";
    for (int i = 0; i < 3; ++i)
        fn.newBlock();
    int c = fn.newReg();
    fn.block(0).append(Instruction::movImm(c, 1));
    fn.block(0).term = Terminator::jmp(1);
    fn.block(1).term = Terminator::br(c, 1, 2); // self loop
    fn.block(2).term = Terminator::ret();

    Cfg cfg(fn);
    Dominators dom(fn, cfg);
    LoopForest loops(fn, cfg, dom);
    ASSERT_EQ(loops.size(), 1u);
    EXPECT_EQ(loops.loops()[0].header, 1);
    ASSERT_EQ(loops.loops()[0].blocks.size(), 1u);
    EXPECT_EQ(loops.loops()[0].blocks[0], 1);
    EXPECT_EQ(loops.loopOf(0), -1);
    EXPECT_EQ(loops.loopOf(2), -1);
}

TEST(Liveness, ValueLiveAcrossBranch)
{
    // r0 defined in block 0, used in block 3: live through 1 and 2.
    Function fn = diamond();
    int v = fn.newReg();
    fn.block(0).append(Instruction::movImm(v, 9));
    fn.block(3).append(
        Instruction::binary(Opcode::Add, Type::I32, fn.newReg(), v, v));
    Cfg cfg(fn);
    Liveness live(fn, cfg);
    EXPECT_TRUE(live.liveOut(0, v));
    EXPECT_TRUE(live.liveIn(1, v));
    EXPECT_TRUE(live.liveIn(2, v));
    EXPECT_TRUE(live.liveIn(3, v));
    EXPECT_FALSE(live.liveOut(3, v));
}

TEST(Verifier, AcceptsValidFunction)
{
    Module m;
    m.functions.push_back(diamond());
    EXPECT_TRUE(verify(m).empty());
}

TEST(Verifier, RejectsMissingTerminator)
{
    Module m;
    Function fn;
    fn.newBlock(); // no terminator
    m.functions.push_back(std::move(fn));
    EXPECT_FALSE(verify(m).empty());
}

TEST(Verifier, RejectsBadBranchTarget)
{
    Module m;
    Function fn = diamond();
    fn.block(1).term = Terminator::jmp(99);
    m.functions.push_back(std::move(fn));
    EXPECT_FALSE(verify(m).empty());
}

TEST(Verifier, RejectsBadRegister)
{
    Module m;
    Function fn = diamond();
    fn.block(1).append(Instruction::mov(1000, 0));
    m.functions.push_back(std::move(fn));
    EXPECT_FALSE(verify(m).empty());
}

TEST(Verifier, RejectsCallArityMismatch)
{
    Module m;
    Function callee;
    callee.name = "callee";
    callee.paramTypes = {Type::I32, Type::I32};
    callee.newBlock();
    callee.block(0).term = Terminator::ret();
    m.functions.push_back(std::move(callee));

    Function caller = diamond();
    caller.name = "caller";
    caller.block(1).append(Instruction::call(-1, 0, {}, Type::Void));
    m.functions.push_back(std::move(caller));
    EXPECT_FALSE(verify(m).empty());
}

TEST(Function, FrameSlotAllocationAligns)
{
    Function fn;
    uint32_t a = fn.allocSlot("a", Type::I32);
    uint32_t b = fn.allocSlot("b", Type::F64);
    uint32_t c = fn.allocSlot("c", Type::I32, 10);
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b % 8, 0u);
    EXPECT_GE(c, b + 8);
    EXPECT_EQ(fn.frameSize % 8, 0u);
}

TEST(Printer, ProducesReadableText)
{
    Module m;
    m.name = "p";
    m.functions.push_back(diamond());
    std::string text = toString(m);
    EXPECT_NE(text.find("func diamond"), std::string::npos);
    EXPECT_NE(text.find("br r0, bb1, bb2"), std::string::npos);
}

TEST(Instruction, ForEachSrcCoversMemoryIndex)
{
    MemRef mem;
    mem.symbol = 0;
    mem.indexReg = 5;
    Instruction in = Instruction::load(1, mem, Type::I32);
    std::vector<int> srcs;
    in.forEachSrc([&](int r) { srcs.push_back(r); });
    ASSERT_EQ(srcs.size(), 1u);
    EXPECT_EQ(srcs[0], 5);
}

TEST(Instruction, OpcodePredicates)
{
    EXPECT_TRUE(isCommutative(Opcode::Add));
    EXPECT_FALSE(isCommutative(Opcode::Sub));
    EXPECT_TRUE(isBinaryAlu(Opcode::CmpLt));
    EXPECT_TRUE(isUnaryAlu(Opcode::CvtIF));
    EXPECT_FALSE(isPure(Opcode::Store));
    EXPECT_FALSE(isPure(Opcode::Load)); // ordering-sensitive
    EXPECT_TRUE(isPure(Opcode::Add));
}

} // namespace
} // namespace bsyn::ir
