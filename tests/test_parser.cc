/** @file MiniC parser tests. */

#include <gtest/gtest.h>

#include "lang/parser.hh"
#include "support/error.hh"

namespace bsyn::lang
{
namespace
{

TEST(Parser, GlobalsAndArrays)
{
    auto tu = parseSource("int x; uint tab[8]; double w[4] = {1.0, 2.0};",
                          "t");
    ASSERT_EQ(tu.globals.size(), 3u);
    EXPECT_EQ(tu.globals[0].name, "x");
    EXPECT_FALSE(tu.globals[0].isArray);
    EXPECT_EQ(tu.globals[1].elems, 8u);
    EXPECT_EQ(tu.globals[1].elemType, Type::U32);
    EXPECT_EQ(tu.globals[2].init.size(), 2u);
}

TEST(Parser, MultipleGlobalsPerDeclaration)
{
    auto tu = parseSource("int a, b, c;", "t");
    EXPECT_EQ(tu.globals.size(), 3u);
}

TEST(Parser, FunctionWithParams)
{
    auto tu = parseSource("int f(int a, double b) { return a; }", "t");
    ASSERT_EQ(tu.functions.size(), 1u);
    const auto &f = tu.functions[0];
    EXPECT_EQ(f.name, "f");
    ASSERT_EQ(f.params.size(), 2u);
    EXPECT_EQ(f.params[1].type, Type::F64);
}

TEST(Parser, VoidParameterList)
{
    auto tu = parseSource("void f(void) { }", "t");
    EXPECT_TRUE(tu.functions[0].params.empty());
}

TEST(Parser, PrecedenceShapesTree)
{
    auto tu = parseSource("int f() { return 1 + 2 * 3; }", "t");
    const auto &ret = static_cast<const ReturnStmt &>(
        *tu.functions[0].body->stmts[0]);
    const auto &add = static_cast<const BinaryExpr &>(*ret.value);
    EXPECT_EQ(add.op, BinOp::Add);
    const auto &mul = static_cast<const BinaryExpr &>(*add.rhs);
    EXPECT_EQ(mul.op, BinOp::Mul);
}

TEST(Parser, BitwisePrecedenceBelowComparison)
{
    // a & b == c parses as a & (b == c), like C.
    auto tu = parseSource("int f(int a, int b, int c) "
                          "{ return a & b == c; }", "t");
    const auto &ret = static_cast<const ReturnStmt &>(
        *tu.functions[0].body->stmts[0]);
    const auto &land = static_cast<const BinaryExpr &>(*ret.value);
    EXPECT_EQ(land.op, BinOp::And);
}

TEST(Parser, StatementsParse)
{
    const char *src = R"(
int f(int n) {
  int acc = 0;
  for (int i = 0; i < n; i++) {
    if (i & 1) acc += i;
    else acc -= i;
    while (acc > 100) { acc = acc / 2; continue; }
    do { acc++; } while (acc < 0);
    if (acc == 42) break;
  }
  ;
  return acc;
}
)";
    auto tu = parseSource(src, "t");
    EXPECT_EQ(tu.functions.size(), 1u);
}

TEST(Parser, MultiVarDeclIsTransparentBlock)
{
    auto tu = parseSource("int f() { int a = 0, b = 1; return a + b; }",
                          "t");
    const auto &block = static_cast<const BlockStmt &>(
        *tu.functions[0].body->stmts[0]);
    EXPECT_TRUE(block.transparent);
    EXPECT_EQ(block.stmts.size(), 2u);
}

TEST(Parser, TernaryAndCasts)
{
    auto tu = parseSource(
        "int f(int a) { return a > 0 ? (int)1.5 : (int)(uint)a; }", "t");
    EXPECT_EQ(tu.functions.size(), 1u);
}

TEST(Parser, PrintfTakesFormat)
{
    auto tu = parseSource(
        "void f() { printf(\"%d %u\\n\", 1, 2u); }", "t");
    const auto &es = static_cast<const ExprStmt &>(
        *tu.functions[0].body->stmts[0]);
    const auto &call = static_cast<const CallExpr &>(*es.expr);
    EXPECT_TRUE(call.isPrintf);
    EXPECT_EQ(call.args.size(), 2u);
}

TEST(Parser, IncDecPrefixPostfix)
{
    auto tu = parseSource("int f(int a) { ++a; a--; return a++; }", "t");
    const auto &ret = static_cast<const ReturnStmt &>(
        *tu.functions[0].body->stmts[2]);
    const auto &inc = static_cast<const IncDecExpr &>(*ret.value);
    EXPECT_TRUE(inc.isPostfix);
    EXPECT_TRUE(inc.isIncrement);
}

TEST(Parser, SyntaxErrors)
{
    EXPECT_THROW(parseSource("int f( { }", "t"), FatalError);
    EXPECT_THROW(parseSource("int f() { return }", "t"), FatalError);
    EXPECT_THROW(parseSource("int x[0];", "t"), FatalError);
    EXPECT_THROW(parseSource("int f() { if (1 }", "t"), FatalError);
    EXPECT_THROW(parseSource("garbage", "t"), FatalError);
}

TEST(Parser, EmittedSyntheticSubsetParses)
{
    // The exact statement shapes the synthesizer emits.
    const char *src = R"(
unsigned int mStream0[64];
unsigned int mStream2[16384];
void f0(void)
{
    int i0;
    unsigned int t0 = 3;
    int x2 = 0;
    for (i0 = 0; i0 < 20; i0++) {
        x2 = (x2 + 2) & 16383;
        mStream2[x2] = (mStream2[(x2 + 2) & 16383] + 190);
        if ((i0 % 3) == 0) {
            mStream0[12] = (unsigned int)i0;
        }
        if (mStream0[0] == 0x99caffee) {
            printf("%u;", mStream0[3]);
        }
    }
}
int main(void)
{
    f0();
    printf("bsyn_checksum=%u\n", mStream0[7] + mStream2[7]);
    return 0;
}
)";
    auto tu = parseSource(src, "t");
    EXPECT_EQ(tu.functions.size(), 2u);
    EXPECT_EQ(tu.globals.size(), 2u);
}

} // namespace
} // namespace bsyn::lang
