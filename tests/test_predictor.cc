/** @file Branch predictor tests (bimodal, gshare, tournament). */

#include <gtest/gtest.h>

#include "sim/branch_predictor.hh"
#include "support/error.hh"
#include "support/rng.hh"

namespace bsyn::sim
{
namespace
{

TEST(Bimodal, LearnsBiasedBranch)
{
    BimodalPredictor p;
    for (int i = 0; i < 1000; ++i)
        p.branch(0x40, true);
    EXPECT_GT(p.stats().accuracy(), 0.99);
}

TEST(Bimodal, PoorOnAlternating)
{
    BimodalPredictor p;
    for (int i = 0; i < 1000; ++i)
        p.branch(0x40, i % 2 == 0);
    EXPECT_LT(p.stats().accuracy(), 0.7);
}

TEST(Gshare, LearnsPeriodicPattern)
{
    GsharePredictor p;
    for (int i = 0; i < 4000; ++i)
        p.branch(0x40, i % 4 == 0); // TFFF TFFF ...
    EXPECT_GT(p.stats().accuracy(), 0.9);
}

TEST(Tournament, AtLeastAsGoodAsComponentsOnMixedWorkload)
{
    // Two branches: one heavily biased (bimodal-friendly), one periodic
    // (history-friendly). The tournament should do well on both.
    TournamentPredictor t;
    BimodalPredictor b;
    GsharePredictor g;
    Rng rng(3);
    for (int i = 0; i < 8000; ++i) {
        bool biased = rng.nextBool(0.95);
        bool periodic = i % 3 == 0;
        for (auto *p :
             std::initializer_list<BranchPredictor *>{&t, &b, &g}) {
            p->branch(0x100, biased);
            p->branch(0x200, periodic);
        }
    }
    EXPECT_GT(t.stats().accuracy(), 0.85);
    EXPECT_GE(t.stats().accuracy() + 0.02, b.stats().accuracy());
    EXPECT_GE(t.stats().accuracy() + 0.02, g.stats().accuracy());
}

TEST(Predictors, DistinctPcsDoNotAliasBadly)
{
    BimodalPredictor p;
    for (int i = 0; i < 1000; ++i) {
        p.branch(0x40, true);
        p.branch(0x44, false);
    }
    EXPECT_GT(p.stats().accuracy(), 0.95);
}

TEST(Predictors, FactoryByName)
{
    for (const char *name : {"static", "bimodal", "gshare", "tournament"}) {
        auto p = makePredictor(name);
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(p->name(), name);
    }
    EXPECT_THROW(makePredictor("neural"), FatalError);
}

TEST(Predictors, StatsResetWorks)
{
    BimodalPredictor p;
    p.branch(0, true);
    EXPECT_EQ(p.stats().branches, 1u);
    p.resetStats();
    EXPECT_EQ(p.stats().branches, 0u);
}

TEST(StaticPredictor, AccuracyEqualsTakenRate)
{
    StaticTakenPredictor p;
    for (int i = 0; i < 100; ++i)
        p.branch(0, i < 70);
    EXPECT_NEAR(p.stats().accuracy(), 0.7, 1e-9);
}

} // namespace
} // namespace bsyn::sim
