/**
 * @file
 * Differential fuzzing of the compiler substrate: structurally random
 * MiniC programs are generated from a seed and executed at every
 * optimization level on every target; all runs must print identical
 * output. This is the property that caught the two subtlest bugs during
 * bring-up (typed store fusion, self-loop natural loops), generalized.
 */

#include <gtest/gtest.h>

#include "isa/lowering.hh"
#include "lang/frontend.hh"
#include "pipeline/pipeline.hh"

#include "program_fuzzer.hh"

namespace bsyn
{
namespace
{

class DifferentialFuzz : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(DifferentialFuzz, AllLevelsAndTargetsAgree)
{
    ProgramFuzzer fuzzer(GetParam());
    std::string src = fuzzer.generate();

    std::string reference;
    for (const char *target : {"x86", "x86_64", "ia64"}) {
        for (auto lvl : {opt::OptLevel::O0, opt::OptLevel::O1,
                         opt::OptLevel::O2, opt::OptLevel::O3}) {
            sim::ExecStats stats;
            ASSERT_NO_THROW(stats = pipeline::runSource(
                                src, "fuzz", lvl,
                                isa::targetByName(target)))
                << "seed " << GetParam() << "\n"
                << src;
            if (reference.empty())
                reference = stats.output;
            EXPECT_EQ(stats.output, reference)
                << "seed " << GetParam() << " at "
                << opt::optLevelName(lvl) << "/" << target << "\n"
                << src;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzz,
                         ::testing::Range<uint64_t>(1, 41));

} // namespace
} // namespace bsyn
