/** @file Profiler/SFGL tests: exact counts on small programs, branch
 *  rates, memory classes, serialization. */

#include <gtest/gtest.h>

#include "lang/frontend.hh"
#include "profile/profiler.hh"

namespace bsyn
{
namespace
{

profile::StatisticalProfile
profileSource(const char *src)
{
    ir::Module m = lang::compile(src, "p");
    return profile::profileModule(m);
}

const profile::SfglLoop *
loopWithIterations(const profile::Sfgl &g, double iters, double tol = 0.5)
{
    for (const auto &l : g.loops)
        if (std::abs(l.avgIterations - iters) <= tol)
            return &l;
    return nullptr;
}

TEST(Profiler, CountsSimpleLoopExactly)
{
    auto prof = profileSource(R"(
uint g;
int main() {
  int i;
  for (i = 0; i < 37; i++) g = g + 1;
  printf("%u\n", g);
  return 0;
})");
    // One loop, entered once, 37 iterations plus the failing test.
    ASSERT_EQ(prof.sfgl.loops.size(), 1u);
    const auto &loop = prof.sfgl.loops[0];
    EXPECT_EQ(loop.entries, 1u);
    EXPECT_NEAR(loop.avgIterations, 38.0, 1.0); // header runs N+1 times
    EXPECT_GT(prof.dynamicInstructions, 0u);
    EXPECT_EQ(prof.dynamicInstructions, prof.mix.total());
}

TEST(Profiler, NestedLoopIterations)
{
    auto prof = profileSource(R"(
uint g;
int main() {
  int i, j;
  for (i = 0; i < 10; i++)
    for (j = 0; j < 20; j++)
      g = g + 1;
  printf("%u\n", g);
  return 0;
})");
    ASSERT_EQ(prof.sfgl.loops.size(), 2u);
    // Outer: entered once, ~11 header visits. Inner: entered 10 times,
    // ~21 header visits per entry.
    EXPECT_NE(loopWithIterations(prof.sfgl, 11.0, 1.0), nullptr);
    const auto *inner = loopWithIterations(prof.sfgl, 21.0, 1.0);
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(inner->entries, 10u);
    EXPECT_EQ(inner->depth, 2);
}

TEST(Profiler, BranchTakenAndTransitionRates)
{
    auto prof = profileSource(R"(
uint g;
int main() {
  int i;
  for (i = 0; i < 1000; i++) {
    if (i % 2 == 0) g = g + 1; /* alternates: transition rate ~1 */
  }
  for (i = 0; i < 1000; i++) {
    if (i < 990) g = g + 2;    /* sticky: transition rate ~0 */
  }
  printf("%u\n", g);
  return 0;
})");
    bool found_alternating = false, found_sticky = false;
    for (const auto &b : prof.sfgl.blocks) {
        if (b.term != profile::SfglTerm::Branch || b.execCount < 900)
            continue;
        if (b.transitionRate > 0.9)
            found_alternating = true;
        if (b.transitionRate < 0.1 && b.takenRate > 0.0 &&
            b.execCount >= 990)
            found_sticky = true;
    }
    EXPECT_TRUE(found_alternating);
    EXPECT_TRUE(found_sticky);
}

TEST(Profiler, MemoryMissClassesReflectLocality)
{
    auto prof = profileSource(R"(
uint big[262144];  /* 1 MB: every 8th access misses at stride 4 */
uint tiny[16];
int main() {
  int i;
  uint s = 0;
  for (i = 0; i < 262144; i++) s += big[i];
  for (i = 0; i < 262144; i++) s += tiny[i & 15];
  printf("%u\n", s);
  return 0;
})");
    // Find the two load descriptors with high execution counts.
    bool saw_streaming = false, saw_resident = false;
    for (const auto &b : prof.sfgl.blocks) {
        if (b.execCount < 100000)
            continue;
        for (const auto &d : b.code) {
            if (!d.readsMem)
                continue;
            if (d.missClass == 1)
                saw_streaming = true; // stride-4 walk => 12.5% band
            if (d.missClass == 0)
                saw_resident = true; // tiny array always hits
        }
    }
    EXPECT_TRUE(saw_streaming);
    EXPECT_TRUE(saw_resident);
}

TEST(Profiler, EdgesCarryCounts)
{
    auto prof = profileSource(R"(
uint g;
int main() {
  int i;
  for (i = 0; i < 100; i++) g += (uint)i;
  printf("%u\n", g);
  return 0;
})");
    uint64_t total_edges = 0;
    for (const auto &b : prof.sfgl.blocks)
        for (const auto &e : b.succs)
            total_edges += e.count;
    EXPECT_GT(total_edges, 100u);
}

TEST(Profiler, MixMatchesExecution)
{
    auto prof = profileSource(R"(
double d[64];
int main() {
  int i;
  for (i = 0; i < 64; i++) d[i] = (double)i * 1.5;
  printf("%d\n", (int)d[10]);
  return 0;
})");
    EXPECT_GT(prof.mix.loadFraction(), 0.0);
    EXPECT_GT(prof.mix.storeFraction(), 0.0);
    EXPECT_GT(prof.mix.branchFraction(), 0.0);
    EXPECT_GT(prof.mix.fpFraction(), 0.0);
    double total = prof.mix.loadFraction() + prof.mix.storeFraction() +
                   prof.mix.branchFraction() + prof.mix.otherFraction();
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Profiler, FunctionCallsDoNotBreakBlockCounts)
{
    auto prof = profileSource(R"(
uint g;
uint bump(uint x) { return x + 1; }
int main() {
  int i;
  for (i = 0; i < 50; i++) g = bump(g);
  printf("%u\n", g);
  return 0;
})");
    // bump's body block must execute exactly 50 times.
    bool found = false;
    for (const auto &b : prof.sfgl.blocks) {
        if (prof.sfgl.funcNames[static_cast<size_t>(b.funcId)] == "bump" &&
            b.execCount == 50)
            found = true;
    }
    EXPECT_TRUE(found);
}

TEST(StatisticalProfile, SerializationRoundTrip)
{
    auto prof = profileSource(R"(
uint g[1024];
int main() {
  int i, j;
  for (i = 0; i < 20; i++)
    for (j = 0; j < 30; j++)
      if ((i ^ j) & 3) g[(i * j) & 1023] += 1;
  printf("%u\n", g[0]);
  return 0;
})");
    std::string text = prof.serialize();
    auto back = profile::StatisticalProfile::deserialize(text);
    EXPECT_EQ(back.workloadName, prof.workloadName);
    EXPECT_EQ(back.dynamicInstructions, prof.dynamicInstructions);
    ASSERT_EQ(back.sfgl.blocks.size(), prof.sfgl.blocks.size());
    ASSERT_EQ(back.sfgl.loops.size(), prof.sfgl.loops.size());
    for (size_t i = 0; i < back.sfgl.blocks.size(); ++i) {
        EXPECT_EQ(back.sfgl.blocks[i].execCount,
                  prof.sfgl.blocks[i].execCount);
        EXPECT_EQ(back.sfgl.blocks[i].code.size(),
                  prof.sfgl.blocks[i].code.size());
        EXPECT_EQ(back.sfgl.blocks[i].succs.size(),
                  prof.sfgl.blocks[i].succs.size());
    }
    for (size_t i = 0; i < back.sfgl.loops.size(); ++i) {
        EXPECT_DOUBLE_EQ(back.sfgl.loops[i].avgIterations,
                         prof.sfgl.loops[i].avgIterations);
    }
    EXPECT_EQ(back.mix.total(), prof.mix.total());
}

TEST(Sfgl, DynamicInstructionAccounting)
{
    auto prof = profileSource(R"(
uint g;
int main() {
  int i;
  for (i = 0; i < 10; i++) g += 2;
  printf("%u\n", g);
  return 0;
})");
    // Sum over blocks of exec*size equals the measured dynamic count.
    EXPECT_EQ(prof.sfgl.dynamicInstructions(), prof.dynamicInstructions);
    EXPECT_LE(prof.sfgl.dynamicBodyInstructions(),
              prof.sfgl.dynamicInstructions());
}

} // namespace
} // namespace bsyn
