/** @file Profiler/SFGL tests: exact counts on small programs, branch
 *  rates, memory classes, per-CondBr annotations, profiling edge
 *  cases, serialization. */

#include <gtest/gtest.h>

#include "lang/frontend.hh"
#include "profile/profiler.hh"

namespace bsyn
{
namespace
{

profile::StatisticalProfile
profileSource(const char *src)
{
    ir::Module m = lang::compile(src, "p");
    return profile::profileModule(m);
}

/** Profile on both collection engines and assert identity; @return the
 *  (shared) profile. */
profile::StatisticalProfile
profileBothEngines(const ir::Module &m,
                   const profile::ProfileOptions &base = {})
{
    profile::ProfileOptions fused = base;
    fused.engine = profile::ProfileEngine::Fused;
    profile::ProfileOptions obs = base;
    obs.engine = profile::ProfileEngine::Observer;
    auto pf = profile::profileModule(m, fused);
    auto po = profile::profileModule(m, obs);
    EXPECT_EQ(po.serialize(), pf.serialize());
    return pf;
}

const profile::SfglLoop *
loopWithIterations(const profile::Sfgl &g, double iters, double tol = 0.5)
{
    for (const auto &l : g.loops)
        if (std::abs(l.avgIterations - iters) <= tol)
            return &l;
    return nullptr;
}

TEST(Profiler, CountsSimpleLoopExactly)
{
    auto prof = profileSource(R"(
uint g;
int main() {
  int i;
  for (i = 0; i < 37; i++) g = g + 1;
  printf("%u\n", g);
  return 0;
})");
    // One loop, entered once, 37 iterations plus the failing test.
    ASSERT_EQ(prof.sfgl.loops.size(), 1u);
    const auto &loop = prof.sfgl.loops[0];
    EXPECT_EQ(loop.entries, 1u);
    EXPECT_NEAR(loop.avgIterations, 38.0, 1.0); // header runs N+1 times
    EXPECT_GT(prof.dynamicInstructions, 0u);
    EXPECT_EQ(prof.dynamicInstructions, prof.mix.total());
}

TEST(Profiler, NestedLoopIterations)
{
    auto prof = profileSource(R"(
uint g;
int main() {
  int i, j;
  for (i = 0; i < 10; i++)
    for (j = 0; j < 20; j++)
      g = g + 1;
  printf("%u\n", g);
  return 0;
})");
    ASSERT_EQ(prof.sfgl.loops.size(), 2u);
    // Outer: entered once, ~11 header visits. Inner: entered 10 times,
    // ~21 header visits per entry.
    EXPECT_NE(loopWithIterations(prof.sfgl, 11.0, 1.0), nullptr);
    const auto *inner = loopWithIterations(prof.sfgl, 21.0, 1.0);
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(inner->entries, 10u);
    EXPECT_EQ(inner->depth, 2);
}

TEST(Profiler, BranchTakenAndTransitionRates)
{
    auto prof = profileSource(R"(
uint g;
int main() {
  int i;
  for (i = 0; i < 1000; i++) {
    if (i % 2 == 0) g = g + 1; /* alternates: transition rate ~1 */
  }
  for (i = 0; i < 1000; i++) {
    if (i < 990) g = g + 2;    /* sticky: transition rate ~0 */
  }
  printf("%u\n", g);
  return 0;
})");
    bool found_alternating = false, found_sticky = false;
    for (const auto &b : prof.sfgl.blocks) {
        if (b.term != profile::SfglTerm::Branch || b.execCount < 900)
            continue;
        if (b.transitionRate > 0.9)
            found_alternating = true;
        if (b.transitionRate < 0.1 && b.takenRate > 0.0 &&
            b.execCount >= 990)
            found_sticky = true;
    }
    EXPECT_TRUE(found_alternating);
    EXPECT_TRUE(found_sticky);
}

TEST(Profiler, MemoryMissClassesReflectLocality)
{
    auto prof = profileSource(R"(
uint big[262144];  /* 1 MB: every 8th access misses at stride 4 */
uint tiny[16];
int main() {
  int i;
  uint s = 0;
  for (i = 0; i < 262144; i++) s += big[i];
  for (i = 0; i < 262144; i++) s += tiny[i & 15];
  printf("%u\n", s);
  return 0;
})");
    // Find the two load descriptors with high execution counts.
    bool saw_streaming = false, saw_resident = false;
    for (const auto &b : prof.sfgl.blocks) {
        if (b.execCount < 100000)
            continue;
        for (const auto &d : b.code) {
            if (!d.readsMem)
                continue;
            if (d.missClass == 1)
                saw_streaming = true; // stride-4 walk => 12.5% band
            if (d.missClass == 0)
                saw_resident = true; // tiny array always hits
        }
    }
    EXPECT_TRUE(saw_streaming);
    EXPECT_TRUE(saw_resident);
}

TEST(Profiler, EdgesCarryCounts)
{
    auto prof = profileSource(R"(
uint g;
int main() {
  int i;
  for (i = 0; i < 100; i++) g += (uint)i;
  printf("%u\n", g);
  return 0;
})");
    uint64_t total_edges = 0;
    for (const auto &b : prof.sfgl.blocks)
        for (const auto &e : b.succs)
            total_edges += e.count;
    EXPECT_GT(total_edges, 100u);
}

TEST(Profiler, MixMatchesExecution)
{
    auto prof = profileSource(R"(
double d[64];
int main() {
  int i;
  for (i = 0; i < 64; i++) d[i] = (double)i * 1.5;
  printf("%d\n", (int)d[10]);
  return 0;
})");
    EXPECT_GT(prof.mix.loadFraction(), 0.0);
    EXPECT_GT(prof.mix.storeFraction(), 0.0);
    EXPECT_GT(prof.mix.branchFraction(), 0.0);
    EXPECT_GT(prof.mix.fpFraction(), 0.0);
    double total = prof.mix.loadFraction() + prof.mix.storeFraction() +
                   prof.mix.branchFraction() + prof.mix.otherFraction();
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Profiler, FunctionCallsDoNotBreakBlockCounts)
{
    auto prof = profileSource(R"(
uint g;
uint bump(uint x) { return x + 1; }
int main() {
  int i;
  for (i = 0; i < 50; i++) g = bump(g);
  printf("%u\n", g);
  return 0;
})");
    // bump's body block must execute exactly 50 times.
    bool found = false;
    for (const auto &b : prof.sfgl.blocks) {
        if (prof.sfgl.funcNames[static_cast<size_t>(b.funcId)] == "bump" &&
            b.execCount == 50)
            found = true;
    }
    EXPECT_TRUE(found);
}

TEST(StatisticalProfile, SerializationRoundTrip)
{
    auto prof = profileSource(R"(
uint g[1024];
int main() {
  int i, j;
  for (i = 0; i < 20; i++)
    for (j = 0; j < 30; j++)
      if ((i ^ j) & 3) g[(i * j) & 1023] += 1;
  printf("%u\n", g[0]);
  return 0;
})");
    std::string text = prof.serialize();
    auto back = profile::StatisticalProfile::deserialize(text);
    EXPECT_EQ(back.workloadName, prof.workloadName);
    EXPECT_EQ(back.dynamicInstructions, prof.dynamicInstructions);
    ASSERT_EQ(back.sfgl.blocks.size(), prof.sfgl.blocks.size());
    ASSERT_EQ(back.sfgl.loops.size(), prof.sfgl.loops.size());
    for (size_t i = 0; i < back.sfgl.blocks.size(); ++i) {
        EXPECT_EQ(back.sfgl.blocks[i].execCount,
                  prof.sfgl.blocks[i].execCount);
        EXPECT_EQ(back.sfgl.blocks[i].code.size(),
                  prof.sfgl.blocks[i].code.size());
        EXPECT_EQ(back.sfgl.blocks[i].succs.size(),
                  prof.sfgl.blocks[i].succs.size());
    }
    for (size_t i = 0; i < back.sfgl.loops.size(); ++i) {
        EXPECT_DOUBLE_EQ(back.sfgl.loops[i].avgIterations,
                         prof.sfgl.loops[i].avgIterations);
    }
    EXPECT_EQ(back.mix.total(), prof.mix.total());
}

// ------------------------------------------------------------------
// Multi-CondBr blocks: profileWorkload must annotate every executed
// conditional branch of a block, not just the first one it finds.
// Normal lowering emits at most one CondBr per IR block, so the
// programs are built by hand (profileWorkload only needs the module
// for loop detection; an empty one means "no loops").
// ------------------------------------------------------------------

isa::MachineProgram
twoCondBrProgram()
{
    using isa::MInst;
    using isa::MKind;
    isa::MachineProgram prog;
    prog.name = "twobr";

    auto inst = [&](MKind kind, int ir_block) {
        MInst mi;
        mi.kind = kind;
        mi.funcId = 0;
        mi.irBlockId = ir_block;
        prog.code.push_back(mi);
        return &prog.code.back();
    };

    // Block 0 (pcs 0..3) carries two conditional branches.
    MInst *mov = inst(MKind::Compute, 0); // pc0: r0 = 1
    mov->op = ir::Opcode::MovImm;
    mov->dst = 0;
    mov->imm = 1;
    MInst *br1 = inst(MKind::CondBr, 0); // pc1: if (r0) goto 3
    br1->src0 = 0;
    br1->target = 3;
    MInst *dead = inst(MKind::Compute, 0); // pc2: r1 = 9 (skipped)
    dead->op = ir::Opcode::MovImm;
    dead->dst = 1;
    dead->imm = 9;
    MInst *br2 = inst(MKind::CondBr, 0); // pc3: if (!r0) goto 5
    br2->src0 = 0;
    br2->brIfZero = true;
    br2->target = 5;
    inst(MKind::Ret, 1)->src0 = -1; // pc4: block 1
    inst(MKind::Ret, 2)->src0 = -1; // pc5: block 2

    isa::MFunction fn;
    fn.name = "main";
    fn.entry = 0;
    fn.end = 6;
    fn.numRegs = 2;
    fn.frameSize = 0;
    fn.numParams = 0;
    prog.funcs.push_back(fn);
    prog.entryFunc = 0;
    return prog;
}

TEST(Profiler, AnnotatesEveryCondBrInABlock)
{
    isa::MachineProgram prog = twoCondBrProgram();
    ir::Module mod; // no functions: no loop annotation needed
    auto prof = profile::profileWorkload(mod, prog);

    // Path: pc0, pc1 (taken -> pc3), pc3 (not taken), pc4 ret.
    ASSERT_EQ(prof.sfgl.blocks.size(), 3u);
    const auto &blk = prof.sfgl.blocks[0];
    EXPECT_EQ(blk.term, profile::SfglTerm::Branch);
    EXPECT_EQ(blk.execCount, 1u);

    // Both CondBrs carry their own stats: the first taken 1/1, the
    // second (which the old scan silently dropped) taken 0/1.
    ASSERT_EQ(blk.code.size(), 4u);
    EXPECT_EQ(blk.code[1].branchExecutions, 1u);
    EXPECT_DOUBLE_EQ(blk.code[1].takenRate, 1.0);
    EXPECT_EQ(blk.code[3].branchExecutions, 1u);
    EXPECT_DOUBLE_EQ(blk.code[3].takenRate, 0.0);

    // Block-level rates summarize the first executed CondBr.
    EXPECT_DOUBLE_EQ(blk.takenRate, 1.0);

    // The skipped MovImm retired zero times: block exec, edges and mix
    // must reflect the taken shortcut (4 retired instructions total).
    EXPECT_EQ(prof.dynamicInstructions, 4u);

    // Fused and observer collection agree on the hand-built program.
    profile::ProfileOptions obs;
    obs.engine = profile::ProfileEngine::Observer;
    EXPECT_EQ(profile::profileWorkload(mod, prog, obs).serialize(),
              prof.serialize());
}

TEST(Profiler, DeadFirstCondBrDoesNotHideLaterBranchStats)
{
    // Enter the block mid-way (entry = 2): the first CondBr never
    // executes; the second does. The old scan broke at the first
    // CondBr and left the block unannotated.
    isa::MachineProgram prog = twoCondBrProgram();
    prog.funcs[0].entry = 2;
    ir::Module mod;
    auto prof = profile::profileWorkload(mod, prog);

    // Path: pc2, pc3 (r0 == 0 -> taken to pc5), pc5 ret.
    const auto &blk = prof.sfgl.blocks[0];
    EXPECT_EQ(blk.code[1].branchExecutions, 0u);
    EXPECT_EQ(blk.code[3].branchExecutions, 1u);
    EXPECT_DOUBLE_EQ(blk.code[3].takenRate, 1.0);
    EXPECT_DOUBLE_EQ(blk.takenRate, 1.0); // from the executed CondBr

    // Entered mid-run: never a block start, so exec stays 0.
    EXPECT_EQ(blk.execCount, 0u);

    profile::ProfileOptions obs;
    obs.engine = profile::ProfileEngine::Observer;
    EXPECT_EQ(profile::profileWorkload(mod, prog, obs).serialize(),
              prof.serialize());
}

// ------------------------------------------------------------------
// Profiling edge cases.
// ------------------------------------------------------------------

TEST(Profiler, NeverEnteredLoopKeepsZeroEntries)
{
    ir::Module m = lang::compile(R"(
uint g;
int main() {
  int i;
  if (g > 5u) {
    for (i = 0; i < 10; i++) g = g + 1;
  }
  printf("%u\n", g);
  return 0;
})",
                                 "p");
    auto prof = profileBothEngines(m);
    bool found_dead_loop = false;
    for (const auto &l : prof.sfgl.loops) {
        if (prof.sfgl.blocks[static_cast<size_t>(l.header)].execCount ==
            0) {
            found_dead_loop = true;
            EXPECT_EQ(l.entries, 0u);
            EXPECT_DOUBLE_EQ(l.avgIterations, 0.0);
        }
    }
    EXPECT_TRUE(found_dead_loop);
}

TEST(Profiler, ReturnsLandingMidBlockDoNotRetriggerBlockStarts)
{
    ir::Module m = lang::compile(R"(
uint g;
uint bump(uint x) { return x + 1; }
int main() {
  int i;
  for (i = 0; i < 50; i++) g = bump(g) + bump(g);
  printf("%u\n", g);
  return 0;
})",
                                 "p");
    auto prof = profileBothEngines(m);
    // The loop body block contains two calls; returning into it twice
    // per iteration must not inflate its execution count past 50.
    bool found_body = false;
    for (const auto &b : prof.sfgl.blocks) {
        if (prof.sfgl.funcNames[static_cast<size_t>(b.funcId)] != "main")
            continue;
        size_t calls = 0;
        for (const auto &d : b.code)
            if (d.cls == isa::MClass::Call)
                ++calls;
        if (calls >= 2) {
            found_body = true;
            EXPECT_EQ(b.execCount, 50u);
        }
    }
    EXPECT_TRUE(found_body);
}

TEST(Profiler, NeverExecutedMemoryPcHasMissClassZero)
{
    profile::MemAccessStats idle;
    EXPECT_EQ(idle.missClass(), 0); // zero accesses: class 0 by fiat

    ir::Module m = lang::compile(R"(
uint g[8];
uint never;
int main() {
  if (never != 0u) g[3] = 7u;
  printf("%u\n", g[3]);
  return 0;
})",
                                 "p");
    auto prof = profileBothEngines(m);
    bool found_dead_store = false;
    for (const auto &b : prof.sfgl.blocks) {
        if (b.execCount != 0)
            continue;
        for (const auto &d : b.code)
            if (d.writesMem) {
                found_dead_store = true;
                EXPECT_EQ(d.missClass, 0);
            }
    }
    EXPECT_TRUE(found_dead_store);
}

TEST(Profiler, LineStraddlingAccessShowsUpInMissClass)
{
    // An f64 access spans two lines of a 4-byte-line cache. On a
    // single-set cache the two halves evict each other, so every
    // access misses: the straddle alone drives the load to class 8.
    // (The width-ignoring access of old touched only the first line
    // and classified the same load as 0.)
    ir::Module m = lang::compile(R"(
double gd;
int main() {
  int i;
  double s = 0.0;
  for (i = 0; i < 200; i++) s = s + gd;
  printf("%d\n", (int)s);
  return 0;
})",
                                 "p");

    profile::ProfileOptions thrash;
    thrash.profilingCache = sim::CacheConfig{4, 4, 1}; // one 4B line
    auto prof = profileBothEngines(m, thrash);
    bool straddle_missed = false;
    for (const auto &b : prof.sfgl.blocks) {
        if (b.execCount < 200)
            continue;
        for (const auto &d : b.code)
            if (d.readsMem && d.type == ir::Type::F64 &&
                d.missClass == 8)
                straddle_missed = true;
    }
    EXPECT_TRUE(straddle_missed);

    // Same program on 8-byte lines: each f64 access fits one line and
    // the resident variable hits, so the load classifies as 0.
    profile::ProfileOptions roomy;
    roomy.profilingCache = sim::CacheConfig{8 * 1024, 8, 4};
    auto prof2 = profileBothEngines(m, roomy);
    bool resident = false;
    for (const auto &b : prof2.sfgl.blocks) {
        if (b.execCount < 200)
            continue;
        for (const auto &d : b.code)
            if (d.readsMem && d.type == ir::Type::F64 && d.missClass == 0)
                resident = true;
    }
    EXPECT_TRUE(resident);
}

TEST(Sfgl, LoadsPreV2DescriptorsWithoutBranchFields)
{
    // Profiles are the distribution artifact: a v1 file (5-element
    // descriptor arrays, no per-branch annotation) must still load,
    // with the new fields at their defaults.
    Json d = Json::array();
    d.push(Json(static_cast<int>(ir::Opcode::Load)));
    d.push(Json(static_cast<int>(ir::Type::U32)));
    d.push(Json(static_cast<int>(isa::MClass::Load)));
    d.push(Json(1)); // readsMem
    d.push(Json(3)); // missClass
    Json code = Json::array();
    code.push(std::move(d));
    Json jb = Json::object();
    jb.set("id", Json(0));
    jb.set("func", Json(0));
    jb.set("irBlock", Json(0));
    jb.set("exec", Json(5));
    jb.set("code", std::move(code));
    jb.set("succs", Json::array());
    jb.set("term", Json(0));
    jb.set("takenRate", Json(0.0));
    jb.set("transitionRate", Json(0.0));
    jb.set("easy", Json(true));
    jb.set("loop", Json(-1));
    Json blocks = Json::array();
    blocks.push(std::move(jb));
    Json root = Json::object();
    root.set("blocks", std::move(blocks));
    root.set("loops", Json::array());
    root.set("funcNames", Json::array());

    auto g = profile::Sfgl::fromJson(root);
    ASSERT_EQ(g.blocks.size(), 1u);
    ASSERT_EQ(g.blocks[0].code.size(), 1u);
    EXPECT_EQ(g.blocks[0].code[0].missClass, 3);
    EXPECT_TRUE(g.blocks[0].code[0].readsMem);
    EXPECT_EQ(g.blocks[0].code[0].branchExecutions, 0u);
    EXPECT_DOUBLE_EQ(g.blocks[0].code[0].takenRate, 0.0);
}

TEST(Sfgl, DynamicInstructionAccounting)
{
    auto prof = profileSource(R"(
uint g;
int main() {
  int i;
  for (i = 0; i < 10; i++) g += 2;
  printf("%u\n", g);
  return 0;
})");
    // Sum over blocks of exec*size equals the measured dynamic count.
    EXPECT_EQ(prof.sfgl.dynamicInstructions(), prof.dynamicInstructions);
    EXPECT_LE(prof.sfgl.dynamicBodyInstructions(),
              prof.sfgl.dynamicInstructions());
}

} // namespace
} // namespace bsyn
