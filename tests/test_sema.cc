/** @file MiniC semantic-analysis tests. */

#include <gtest/gtest.h>

#include "lang/parser.hh"
#include "lang/sema.hh"
#include "support/error.hh"

namespace bsyn::lang
{
namespace
{

SemaInfo
check(const std::string &src, TranslationUnit &tu)
{
    tu = parseSource(src, "t");
    return analyze(tu);
}

void
expectError(const std::string &src)
{
    TranslationUnit tu;
    EXPECT_THROW(check(src, tu), bsyn::FatalError) << src;
}

TEST(Sema, ResolvesLocalsParamsGlobals)
{
    TranslationUnit tu;
    auto info = check("int g; int f(int p) { int l = p + g; return l; }",
                      tu);
    ASSERT_EQ(info.functions.size(), 1u);
    const auto &locals = info.functions[0].locals;
    ASSERT_EQ(locals.size(), 2u);
    EXPECT_TRUE(locals[0].isParam);
    EXPECT_EQ(locals[0].name, "p");
    EXPECT_EQ(locals[1].name, "l");
}

TEST(Sema, TypePropagation)
{
    TranslationUnit tu;
    check("double f(int a, uint b, double d) "
          "{ return a + b + d; }", tu);
    const auto &ret = static_cast<const ReturnStmt &>(
        *tu.functions[0].body->stmts[0]);
    EXPECT_EQ(ret.value->type, Type::F64);
}

TEST(Sema, UnsignedWinsOverSigned)
{
    TranslationUnit tu;
    check("uint f(int a, uint b) { return a + b; }", tu);
    const auto &ret = static_cast<const ReturnStmt &>(
        *tu.functions[0].body->stmts[0]);
    EXPECT_EQ(ret.value->type, Type::U32);
}

TEST(Sema, ComparisonYieldsInt)
{
    TranslationUnit tu;
    check("int f(double a, double b) { return a < b; }", tu);
    const auto &ret = static_cast<const ReturnStmt &>(
        *tu.functions[0].body->stmts[0]);
    EXPECT_EQ(ret.value->type, Type::I32);
}

TEST(Sema, ScopingShadowsAndExpires)
{
    TranslationUnit tu;
    // Inner x shadows outer; after the block the outer is visible again.
    check("int f() { int x = 1; { int x = 2; x = 3; } return x; }", tu);
    // for-init variable is scoped to the loop.
    expectError("int f() { for (int i = 0; i < 3; i++) {} return i; }");
}

TEST(Sema, ErrorsOnUndeclared)
{
    expectError("int f() { return nope; }");
    expectError("int f() { nope(); return 0; }");
}

TEST(Sema, ErrorsOnRedefinition)
{
    expectError("int x; int x;");
    expectError("int f() { return 0; } int f() { return 1; }");
    expectError("int f() { int a = 0; int a = 1; return a; }");
}

TEST(Sema, ErrorsOnBadAssignments)
{
    expectError("int a[4]; int f() { a = 3; return 0; }");
    expectError("int f() { 3 = 4; return 0; }");
    expectError("int f() { f = 1; return 0; }");
}

TEST(Sema, ErrorsOnBadOperandTypes)
{
    expectError("int f(double d) { return d % 2.0; }");
    expectError("int f(double d) { return d & 1; }");
    expectError("int f(double d) { return d << 1; }");
    expectError("int f(double d) { d++; return 0; }");
}

TEST(Sema, ErrorsOnCallArity)
{
    expectError("int g(int a) { return a; } int f() { return g(); }");
    expectError("int g(int a) { return a; } int f() { return g(1, 2); }");
}

TEST(Sema, ErrorsOnReturnMismatch)
{
    expectError("void f() { return 3; }");
    expectError("int f() { return; }");
}

TEST(Sema, ErrorsOnBreakOutsideLoop)
{
    expectError("int f() { break; return 0; }");
    expectError("int f() { continue; return 0; }");
}

TEST(Sema, ErrorsOnNonArraySubscript)
{
    expectError("int x; int f() { return x[0]; }");
}

TEST(Sema, ErrorsOnArrayUsedAsScalar)
{
    expectError("int a[4]; int f() { return a + 1; }");
}

TEST(Sema, GlobalInitializersMustBeLiterals)
{
    TranslationUnit tu;
    check("int x = -5; double d = 1.5; uint u = 0xff;", tu);
    expectError("int y = 1 + 2;");
}

TEST(Sema, StringOnlyInPrintf)
{
    expectError("int f() { return \"no\"; }");
}

} // namespace
} // namespace bsyn::lang
