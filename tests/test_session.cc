/** @file Tests for the stage-oriented pipeline::Session API: the
 *  content-addressed artifact cache (hit/miss semantics, warm-run
 *  byte-identity, zero recomputation), streaming RunSinks, per-workload
 *  failure isolation, and seed-derivation stability. */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <sys/wait.h>
#include <unistd.h>

#include "pipeline/artifact_cache.hh"
#include "pipeline/run_sink.hh"
#include "pipeline/session.hh"
#include "support/error.hh"
#include "support/string_util.hh"

namespace fs = std::filesystem;

namespace bsyn
{
namespace
{

synth::SynthesisOptions
fastOptions()
{
    auto opts = pipeline::defaultSynthesisOptions();
    opts.targetInstructions = 30000;
    return opts;
}

/** Fresh scratch directory under the gtest temp root, wiped on exit. */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &tag)
        : path_(std::string(::testing::TempDir()) + "bsyn_" + tag + "_" +
                std::to_string(::getpid()))
    {
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~ScratchDir()
    {
        std::error_code ec;
        fs::remove_all(path_, ec);
    }
    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

std::vector<workloads::Workload>
smallBatch()
{
    return {workloads::findWorkload("crc32/small"),
            workloads::findWorkload("bitcount/small"),
            workloads::findWorkload("stringsearch/small")};
}

TEST(ArtifactCache, KeysSeparatePartsAndStages)
{
    // Length-prefixed parts: ("ab","c") and ("a","bc") must not
    // collide, nor the same parts under different stage tags.
    auto k1 = pipeline::ArtifactCache::key("s", {"ab", "c"});
    auto k2 = pipeline::ArtifactCache::key("s", {"a", "bc"});
    auto k3 = pipeline::ArtifactCache::key("t", {"ab", "c"});
    EXPECT_EQ(k1.size(), 64u);
    EXPECT_NE(k1, k2);
    EXPECT_NE(k1, k3);
    EXPECT_EQ(k1, pipeline::ArtifactCache::key("s", {"ab", "c"}));
}

TEST(ArtifactCache, RoundTripsAndDisabledCacheMisses)
{
    ScratchDir dir("cache_rt");
    pipeline::ArtifactCache cache(dir.str());
    ASSERT_TRUE(cache.enabled());

    std::string key = pipeline::ArtifactCache::key("test", {"payload"});
    std::string text;
    EXPECT_FALSE(cache.load(key, text));
    cache.store(key, "hello \xf0\x9f\x98\x80 artifact");
    ASSERT_TRUE(cache.load(key, text));
    EXPECT_EQ(text, "hello \xf0\x9f\x98\x80 artifact");

    pipeline::ArtifactCache disabled;
    EXPECT_FALSE(disabled.enabled());
    disabled.store(key, "dropped");
    EXPECT_FALSE(disabled.load(key, text));
}

TEST(Session, CacheHitMissSemantics)
{
    ScratchDir dir("hitmiss");
    const auto &w = workloads::findWorkload("crc32/small");

    pipeline::SessionOptions so;
    so.cacheDir = dir.str();
    so.threads = 1;
    so.synthesis = fastOptions();
    pipeline::Session session(std::move(so));

    // Cold: both stages computed.
    pipeline::RunStatus st;
    auto cold = session.process(w, fastOptions(), &st);
    EXPECT_FALSE(st.profileCached);
    EXPECT_FALSE(st.synthCached);
    auto stats = session.cacheStats();
    EXPECT_EQ(stats.profileMisses, 1u);
    EXPECT_EQ(stats.synthMisses, 1u);
    EXPECT_EQ(stats.hits(), 0u);

    // Same inputs, same session: both stages served from cache.
    auto warm = session.process(w, fastOptions(), &st);
    EXPECT_TRUE(st.profileCached);
    EXPECT_TRUE(st.synthCached);
    stats = session.cacheStats();
    EXPECT_EQ(stats.profileHits, 1u);
    EXPECT_EQ(stats.synthHits, 1u);
    EXPECT_EQ(warm.synthetic.cSource, cold.synthetic.cSource);
    EXPECT_EQ(warm.profile.serialize(), cold.profile.serialize());
    EXPECT_EQ(warm.synthetic.reductionFactor,
              cold.synthetic.reductionFactor);
    EXPECT_EQ(warm.synthetic.patternStats.coveredInstrs,
              cold.synthetic.patternStats.coveredInstrs);

    // Different synthesis options: profile hits, synthesis misses.
    auto opts2 = fastOptions();
    opts2.seed ^= 0x1234;
    session.process(w, opts2, &st);
    EXPECT_TRUE(st.profileCached);
    EXPECT_FALSE(st.synthCached);

    // A fresh session sharing the directory starts warm (disk is the
    // source of truth, not per-session memory).
    pipeline::SessionOptions so2;
    so2.cacheDir = dir.str();
    so2.threads = 1;
    pipeline::Session fresh(std::move(so2));
    fresh.process(w, fastOptions(), &st);
    EXPECT_TRUE(st.profileCached);
    EXPECT_TRUE(st.synthCached);
}

TEST(Session, DecodeCacheMemoizesCalibrationMeasurements)
{
    pipeline::Session session; // in-memory decode cache, no disk cache
    const std::string src =
        "int main() {\n"
        "  int i; int s; s = 0;\n"
        "  for (i = 0; i < 100; i = i + 1) s = s + i;\n"
        "  printf(\"%d\\n\", s);\n"
        "  return 0;\n"
        "}\n";

    uint64_t first = session.measureInstructions(src);
    EXPECT_GT(first, 0u);
    auto cold = session.cacheStats();
    EXPECT_EQ(cold.decodeMisses, 1u);
    EXPECT_EQ(cold.decodeHits, 0u);

    // Re-measuring the identical source must hit the memo (this is the
    // property that keeps calibration rounds from recompiling), return
    // the same count, and not touch the artifact-cache counters.
    uint64_t second = session.measureInstructions(src);
    EXPECT_EQ(second, first);
    auto warm = session.cacheStats();
    EXPECT_EQ(warm.decodeMisses, 1u);
    EXPECT_EQ(warm.decodeHits, 1u);
    EXPECT_EQ(warm.hits(), 0u);
    EXPECT_EQ(warm.misses(), 0u);

    // A different source is a distinct entry, and the memoized path
    // agrees with the uncached free-function measurement.
    uint64_t other =
        session.measureInstructions("int main() { return 0; }");
    auto after = session.cacheStats();
    EXPECT_EQ(after.decodeMisses, 2u);
    EXPECT_EQ(first, pipeline::measureInstructions(src));
    EXPECT_EQ(other, pipeline::measureInstructions(
                         "int main() { return 0; }"));
}

TEST(Session, WarmSuiteRecomputesNothingAndIsByteIdentical)
{
    // The acceptance criterion: a warm-cache suite re-run performs zero
    // profile/synthesis recomputation (cache-hit counters) and writes
    // byte-identical output files, at a different thread count.
    ScratchDir cacheDir("warm_cache");
    ScratchDir outCold("warm_out_cold");
    ScratchDir outWarm("warm_out_warm");
    auto ws = smallBatch();

    pipeline::SessionOptions coldOpts;
    coldOpts.cacheDir = cacheDir.str();
    coldOpts.threads = 1;
    coldOpts.synthesis = fastOptions();
    pipeline::Session cold(std::move(coldOpts));
    pipeline::DirectorySink coldSink(outCold.str());
    auto coldStatuses = cold.processSuite(ws, coldSink);
    ASSERT_EQ(coldStatuses.size(), ws.size());
    auto coldStats = cold.cacheStats();
    EXPECT_EQ(coldStats.profileMisses, ws.size());
    EXPECT_EQ(coldStats.synthMisses, ws.size());
    EXPECT_EQ(coldSink.written(), ws.size());

    pipeline::SessionOptions warmOpts;
    warmOpts.cacheDir = cacheDir.str();
    warmOpts.threads = 4; // different parallelism, same bytes
    warmOpts.synthesis = fastOptions();
    pipeline::Session warm(std::move(warmOpts));
    pipeline::DirectorySink warmSink(outWarm.str());
    auto warmStatuses = warm.processSuite(ws, warmSink);

    auto warmStats = warm.cacheStats();
    EXPECT_EQ(warmStats.profileMisses, 0u) << "re-profiled a cached run";
    EXPECT_EQ(warmStats.synthMisses, 0u) << "re-synthesized a cached run";
    EXPECT_EQ(warmStats.profileHits, ws.size());
    EXPECT_EQ(warmStats.synthHits, ws.size());
    for (const auto &st : warmStatuses) {
        EXPECT_TRUE(st.ok) << st.workload;
        EXPECT_TRUE(st.profileCached) << st.workload;
        EXPECT_TRUE(st.synthCached) << st.workload;
    }

    // Every output file byte-identical across cold and warm.
    size_t files = 0;
    for (const auto &entry : fs::directory_iterator(outCold.str())) {
        std::string name = entry.path().filename().string();
        EXPECT_EQ(readFile(outCold.str() + "/" + name),
                  readFile(outWarm.str() + "/" + name))
            << name;
        ++files;
    }
    EXPECT_EQ(files, 2 * ws.size()); // one .c + one .profile.json each
}

TEST(Session, StreamToDiskMatchesCollect)
{
    // A DirectorySink must write exactly the bytes a CollectSink holds
    // in memory — streaming changes residency, never content.
    ScratchDir out("stream_vs_collect");
    auto ws = smallBatch();

    pipeline::SessionOptions so;
    so.threads = 2;
    so.synthesis = fastOptions();
    pipeline::Session session(std::move(so));

    pipeline::CollectSink collect;
    pipeline::DirectorySink disk(out.str());
    std::vector<pipeline::RunSink *> children{&collect, &disk};
    pipeline::TeeSink tee(children);
    auto statuses = session.processSuite(ws, tee);
    for (const auto &st : statuses)
        EXPECT_TRUE(st.ok) << st.workload;

    auto runs = collect.takeRuns();
    ASSERT_EQ(runs.size(), ws.size());
    EXPECT_EQ(disk.written(), ws.size());
    for (const auto &r : runs) {
        std::string base = out.str() + "/" + r.workload.benchmark + "_" +
                           r.workload.input;
        EXPECT_EQ(readFile(base + ".c"), r.synthetic.cSource);
        EXPECT_EQ(readFile(base + ".profile.json"),
                  r.profile.serialize());
    }
    // Collect restored batch order.
    for (size_t i = 0; i < ws.size(); ++i)
        EXPECT_EQ(runs[i].workload.name(), ws[i].name());
}

TEST(Session, PerWorkloadFailureIsolation)
{
    // One broken workload must not abort the batch: it surfaces as a
    // structured !ok status while every other workload completes.
    workloads::Workload bad;
    bad.benchmark = "broken";
    bad.input = "syntax";
    bad.source = "int main( { this is not MiniC ";
    std::vector<workloads::Workload> ws{
        workloads::findWorkload("crc32/small"),
        bad,
        workloads::findWorkload("bitcount/small"),
    };

    pipeline::SessionOptions so;
    so.threads = 2;
    so.synthesis = fastOptions();
    pipeline::Session session(std::move(so));

    pipeline::CollectSink collect;
    auto statuses = session.processSuite(ws, collect);
    ASSERT_EQ(statuses.size(), 3u);
    EXPECT_TRUE(statuses[0].ok);
    EXPECT_FALSE(statuses[1].ok);
    EXPECT_TRUE(statuses[2].ok);
    EXPECT_EQ(statuses[1].workload, "broken/syntax");
    EXPECT_FALSE(statuses[1].error.empty());

    // The sink saw all three statuses but only two successful runs.
    EXPECT_EQ(collect.statuses().size(), 3u);
    auto runs = collect.takeRuns();
    ASSERT_EQ(runs.size(), 2u);
    EXPECT_EQ(runs[0].workload.name(), "crc32/small");
    EXPECT_EQ(runs[1].workload.name(), "bitcount/small");
    EXPECT_FALSE(runs[0].synthetic.cSource.empty());

    // The strict convenience API keeps abort-on-failure semantics.
    EXPECT_THROW(session.processSuite(ws), FatalError);
}

TEST(Session, SeedDerivationStableUnderCachingAndBatching)
{
    // The per-workload seed depends only on base seed + name, so a
    // workload synthesized alone, in a batch, or out of the cache
    // yields the same bytes.
    const auto &w = workloads::findWorkload("crc32/small");
    ScratchDir dir("seed_stab");

    pipeline::SessionOptions so;
    so.cacheDir = dir.str();
    so.threads = 2;
    so.synthesis = fastOptions();
    pipeline::Session session(std::move(so));

    pipeline::CollectSink collect;
    session.processSuite({w}, collect);
    auto batch = collect.takeRuns();
    ASSERT_EQ(batch.size(), 1u);

    auto direct = fastOptions();
    direct.seed = pipeline::deriveWorkloadSeed(direct.seed, w.name());
    pipeline::SessionOptions noCache;
    noCache.threads = 1;
    pipeline::Session uncached(std::move(noCache));
    auto alone = uncached.process(w, direct);
    EXPECT_EQ(alone.synthetic.cSource, batch[0].synthetic.cSource);

    // And reloading the batch result from the warm cache matches too.
    pipeline::CollectSink collect2;
    session.processSuite({w}, collect2);
    auto warm = collect2.takeRuns();
    ASSERT_EQ(warm.size(), 1u);
    EXPECT_EQ(warm[0].synthetic.cSource, batch[0].synthetic.cSource);
    EXPECT_EQ(warm[0].profile.serialize(), batch[0].profile.serialize());
}

TEST(Session, CallbackSinkObservesEveryRun)
{
    auto ws = smallBatch();
    pipeline::SessionOptions so;
    so.threads = 2;
    so.synthesis = fastOptions();
    pipeline::Session session(std::move(so));

    std::vector<std::string> seen;
    pipeline::CallbackSink sink(
        [&](const pipeline::RunStatus &st, const pipeline::WorkloadRun &r) {
            EXPECT_TRUE(st.ok);
            EXPECT_EQ(r.workload.name(), st.workload);
            seen.push_back(st.workload);
        });
    session.processSuite(ws, sink);
    ASSERT_EQ(seen.size(), ws.size());
    std::sort(seen.begin(), seen.end());
    EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
    for (const auto &w : ws)
        EXPECT_NE(std::find(seen.begin(), seen.end(), w.name()),
                  seen.end());
}

/** A payload whose integrity is self-evident: a one-byte tag repeated,
 *  so any torn read (half old inode, half new) is detectable. */
std::string
taggedPayload(char tag, size_t len)
{
    return std::string(len, tag);
}

bool
isUntorn(const std::string &text)
{
    if (text.empty())
        return false;
    for (char c : text)
        if (c != text[0])
            return false;
    return true;
}

TEST(ArtifactCache, ConcurrentProcessesNeverTearEntries)
{
    // Two real processes hammer the same keys through the same cache
    // directory: one stores ever-changing payloads, the other loads.
    // The atomic temp-file + rename store means every load must see a
    // complete payload from *some* writer — never a mix, never a
    // partial file. This is the property multi-process sharding and
    // serve workers stand on.
    ScratchDir dir("cache_mp");
    const size_t kKeys = 4;
    const size_t kRounds = 400;
    const size_t kLen = 64 * 1024; // spans many write() granularities

    std::vector<std::string> keys;
    for (size_t k = 0; k < kKeys; ++k)
        keys.push_back(pipeline::ArtifactCache::key(
            "mp-stress", {std::to_string(k)}));

    pid_t child = ::fork();
    ASSERT_NE(child, -1);
    if (child == 0) {
        // Writer process: rewrite every key kRounds times with a
        // round-tagged payload.
        pipeline::ArtifactCache cache(dir.str());
        for (size_t r = 0; r < kRounds; ++r)
            for (size_t k = 0; k < kKeys; ++k)
                cache.store(keys[k],
                            taggedPayload('a' + (r + k) % 26, kLen));
        ::_exit(0);
    }

    // Reader (parent) process: concurrent loads plus its own stores —
    // both sides of the last-writer-wins race.
    pipeline::ArtifactCache cache(dir.str());
    size_t loads = 0, hits = 0;
    for (size_t r = 0; r < kRounds; ++r) {
        for (size_t k = 0; k < kKeys; ++k) {
            std::string text;
            ++loads;
            if (cache.load(keys[k], text)) {
                ++hits;
                EXPECT_EQ(text.size(), kLen);
                EXPECT_TRUE(isUntorn(text))
                    << "torn read on key " << k << " round " << r;
            }
            if (r % 16 == 0)
                cache.store(keys[k], taggedPayload('Z', kLen));
        }
    }
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);

    // By the end every key must be loadable and complete, and the
    // cache directory must hold no leftover temp files (every store
    // either renamed into place or was itself renamed over).
    for (size_t k = 0; k < kKeys; ++k) {
        std::string text;
        ASSERT_TRUE(cache.load(keys[k], text));
        EXPECT_TRUE(isUntorn(text));
    }
    size_t tmpFiles = 0;
    for (const auto &e : fs::recursive_directory_iterator(dir.str()))
        if (e.is_regular_file() &&
            e.path().filename().string().find(".tmp.") !=
                std::string::npos)
            ++tmpFiles;
    EXPECT_EQ(tmpFiles, 0u);
    EXPECT_GT(hits, 0u) << "stress never overlapped (" << loads
                        << " loads)";
}

TEST(Session, CacheCountersAreScopedPerProcess)
{
    // Two sessions sharing one cache directory: the second session's
    // warm hits must show up in *its* counters, and the first
    // session's counters must not move — per-process accounting over
    // a shared on-disk cache (what the warm-shard CI check greps).
    auto ws = smallBatch();
    ScratchDir cacheDir("cache_scope");

    pipeline::SessionOptions so;
    so.threads = 2;
    so.cacheDir = cacheDir.str();
    so.synthesis = fastOptions();
    pipeline::Session first(so);
    first.processSuite(ws);
    auto coldStats = first.cacheStats();
    EXPECT_EQ(coldStats.profileMisses, ws.size());
    EXPECT_EQ(coldStats.synthMisses, ws.size());
    EXPECT_EQ(coldStats.profileHits, 0u);

    pipeline::SessionOptions so2;
    so2.threads = 2;
    so2.cacheDir = cacheDir.str();
    so2.synthesis = fastOptions();
    pipeline::Session second(so2);
    second.processSuite(ws);
    auto warmStats = second.cacheStats();
    EXPECT_EQ(warmStats.profileHits, ws.size());
    EXPECT_EQ(warmStats.synthHits, ws.size());
    EXPECT_EQ(warmStats.profileMisses, 0u);
    EXPECT_EQ(warmStats.synthMisses, 0u);

    // The first session's view is unchanged by the second's traffic.
    auto after = first.cacheStats();
    EXPECT_EQ(after.profileHits, coldStats.profileHits);
    EXPECT_EQ(after.profileMisses, coldStats.profileMisses);
    EXPECT_EQ(after.synthMisses, coldStats.synthMisses);
}

} // namespace
} // namespace bsyn
