/** @file Synthesizer tests: skeleton generation, pattern codegen, stream
 *  planning, emitted-C validity, determinism and behavioural fidelity. */

#include <gtest/gtest.h>

#include "pipeline/pipeline.hh"
#include "lang/frontend.hh"
#include "synth/memory_streams.hh"
#include "synth/scale_down.hh"
#include "synth/skeleton.hh"

namespace bsyn
{
namespace
{

profile::StatisticalProfile
profileSource(const char *src)
{
    ir::Module m = lang::compile(src, "w");
    return profile::profileModule(m);
}

const char *loopWorkload = R"(
uint t[4096];
uint g;
int main() {
  int i, j;
  for (i = 0; i < 200; i++) {
    for (j = 0; j < 50; j++) {
      t[(i * 50 + j) & 4095] = t[(i * 37 + j) & 4095] + (uint)j;
    }
    if (i % 4 == 0) g += t[i & 4095];
  }
  printf("%u %u\n", g, t[99]);
  return 0;
})";

TEST(StreamPlan, NamesAndStrides)
{
    synth::StreamPlan plan(16384);
    plan.use(2, false);
    plan.use(0, true);
    EXPECT_EQ(plan.arrayName(2, false), "mStream2");
    EXPECT_EQ(plan.arrayName(0, true), "dStream0");
    EXPECT_EQ(plan.indexVar(3, false), "x3");
    EXPECT_EQ(plan.indexVar(3, true), "fx3");
    EXPECT_EQ(plan.strideElems(0, false), 0u);
    EXPECT_EQ(plan.strideElems(2, false), 2u); // 8 bytes / 4
    EXPECT_EQ(plan.strideElems(8, false), 8u); // 32 bytes -> every line
    EXPECT_EQ(plan.mask(), 16383u);
    EXPECT_EQ(plan.used().size(), 2u);
    EXPECT_EQ(plan.globalDecls().size(), 2u);
}

TEST(Skeleton, ConsumesAllCountsAndTerminates)
{
    auto prof = profileSource(loopWorkload);
    auto scaled = synth::scaleDown(prof.sfgl, 10);
    Rng rng(1);
    auto skeleton = synth::buildSkeleton(scaled, rng);
    ASSERT_FALSE(skeleton.funcs.empty());
    size_t nodes = 0;
    for (const auto &f : skeleton.funcs)
        nodes += f.roots.size();
    EXPECT_GT(nodes, 0u);
}

TEST(Skeleton, LoopInfoProducesLoopNodes)
{
    auto prof = profileSource(loopWorkload);
    auto scaled = synth::scaleDown(prof.sfgl, 10);
    Rng rng(1);
    auto skeleton = synth::buildSkeleton(scaled, rng);

    std::function<bool(const synth::SynNode &)> hasLoop =
        [&](const synth::SynNode &n) {
            if (n.kind == synth::SynNode::Kind::Loop)
                return true;
            for (const auto &c : n.body)
                if (hasLoop(c))
                    return true;
            return false;
        };
    bool any_loop = false;
    for (const auto &f : skeleton.funcs)
        for (const auto &r : f.roots)
            any_loop |= hasLoop(r);
    EXPECT_TRUE(any_loop);

    // Ablation: with loop info disabled, no Loop nodes appear (only
    // Repeat wrappers — the prior-work baseline).
    synth::SkeletonOptions no_loops;
    no_loops.useLoopInfo = false;
    Rng rng2(1);
    auto flat = synth::buildSkeleton(scaled, rng2, no_loops);
    bool flat_loop = false;
    for (const auto &f : flat.funcs)
        for (const auto &r : f.roots)
            flat_loop |= hasLoop(r);
    EXPECT_FALSE(flat_loop);
}

TEST(Synthesizer, CloneIsValidMiniCAndTerminates)
{
    auto prof = profileSource(loopWorkload);
    synth::SynthesisOptions opts;
    opts.targetInstructions = 5000;
    auto syn = synth::synthesize(prof, opts,
                                 &pipeline::measureInstructions);
    ASSERT_FALSE(syn.cSource.empty());

    auto stats = pipeline::runSource(syn.cSource, "clone",
                                     opt::OptLevel::O0, isa::targetX86());
    EXPECT_GT(stats.instructions, 500u);
    EXPECT_NE(stats.output.find("bsyn_checksum="), std::string::npos);
}

TEST(Synthesizer, CloneCompilesAtAllLevelsWithStableOutput)
{
    auto prof = profileSource(loopWorkload);
    synth::SynthesisOptions opts;
    opts.targetInstructions = 5000;
    auto syn = synth::synthesize(prof, opts,
                                 &pipeline::measureInstructions);
    std::string ref;
    for (auto lvl : {opt::OptLevel::O0, opt::OptLevel::O1,
                     opt::OptLevel::O2, opt::OptLevel::O3}) {
        auto stats = pipeline::runSource(syn.cSource, "clone", lvl,
                                         isa::targetX86());
        if (ref.empty())
            ref = stats.output;
        EXPECT_EQ(stats.output, ref) << opt::optLevelName(lvl);
    }
}

TEST(Synthesizer, DeterministicForSeed)
{
    auto prof = profileSource(loopWorkload);
    synth::SynthesisOptions opts;
    opts.targetInstructions = 5000;
    opts.seed = 77;
    auto a = synth::synthesize(prof, opts);
    auto b = synth::synthesize(prof, opts);
    EXPECT_EQ(a.cSource, b.cSource);

    opts.seed = 78;
    auto c = synth::synthesize(prof, opts);
    EXPECT_NE(a.cSource, c.cSource);
}

TEST(Synthesizer, ReductionShrinksInstructionCount)
{
    auto prof = profileSource(loopWorkload);
    synth::SynthesisOptions opts;
    opts.targetInstructions = 5000;
    auto syn = synth::synthesize(prof, opts,
                                 &pipeline::measureInstructions);
    uint64_t clone_insts = pipeline::measureInstructions(syn.cSource);
    EXPECT_LT(clone_insts, prof.dynamicInstructions / 2);
    EXPECT_GT(syn.reductionFactor, 1u);
    EXPECT_LE(syn.reductionFactor, 250u);
}

TEST(Synthesizer, CalibrationApproachesTarget)
{
    auto prof = profileSource(loopWorkload);
    synth::SynthesisOptions opts;
    opts.targetInstructions = 8000;
    opts.calibrationRounds = 3;
    auto syn = synth::synthesize(prof, opts,
                                 &pipeline::measureInstructions);
    uint64_t clone_insts = pipeline::measureInstructions(syn.cSource);
    EXPECT_GT(clone_insts, opts.targetInstructions / 4);
    EXPECT_LT(clone_insts, opts.targetInstructions * 4);
}

TEST(Synthesizer, PatternCoverageIsHigh)
{
    // Table II: the patterns cover over 95% of dynamic instructions.
    auto prof = profileSource(loopWorkload);
    synth::SynthesisOptions opts;
    opts.targetInstructions = 5000;
    auto syn = synth::synthesize(prof, opts);
    EXPECT_GT(syn.patternStats.coverage(), 0.95);
    EXPECT_GT(syn.patternStats.statements, 0u);
}

TEST(Synthesizer, GuardedPathsNeverExecute)
{
    // The never-taken printf guards must not fire: the clone's output is
    // exactly the final checksum line.
    auto prof = profileSource(loopWorkload);
    synth::SynthesisOptions opts;
    opts.targetInstructions = 5000;
    auto syn = synth::synthesize(prof, opts);
    auto stats = pipeline::runSource(syn.cSource, "clone",
                                     opt::OptLevel::O0, isa::targetX86());
    EXPECT_EQ(stats.output.rfind("bsyn_checksum=", 0), 0u)
        << stats.output;
}

TEST(Synthesizer, FpWorkloadProducesFpClone)
{
    const char *fp_workload = R"(
double d[2048];
int main() {
  int i, r;
  for (r = 0; r < 40; r++)
    for (i = 0; i < 2000; i++)
      d[i] = d[i] * 1.0001 + (double)i * 0.5;
  printf("%d\n", (int)d[100]);
  return 0;
})";
    auto prof = profileSource(fp_workload);
    EXPECT_GT(prof.mix.fpFraction(), 0.1);

    synth::SynthesisOptions opts;
    opts.targetInstructions = 5000;
    auto syn = synth::synthesize(prof, opts);
    EXPECT_NE(syn.cSource.find("dStream"), std::string::npos);

    ir::Module m = lang::compile(syn.cSource, "clone");
    auto clone_prof = profile::profileModule(m);
    EXPECT_GT(clone_prof.mix.fpFraction(), 0.05);
}

TEST(Synthesizer, CloneMixTracksOriginal)
{
    auto prof = profileSource(loopWorkload);
    synth::SynthesisOptions opts;
    opts.targetInstructions = 10000;
    auto syn = synth::synthesize(prof, opts,
                                 &pipeline::measureInstructions);
    ir::Module m = lang::compile(syn.cSource, "clone");
    auto clone_prof = profile::profileModule(m);
    // Same broad shape: loads/stores/branches within a loose band.
    EXPECT_NEAR(clone_prof.mix.loadFraction(),
                prof.mix.loadFraction(), 0.20);
    EXPECT_NEAR(clone_prof.mix.storeFraction(),
                prof.mix.storeFraction(), 0.20);
    EXPECT_NEAR(clone_prof.mix.branchFraction(),
                prof.mix.branchFraction(), 0.20);
}

TEST(Synthesizer, StatisticalCodegenAblationStillRuns)
{
    auto prof = profileSource(loopWorkload);
    synth::SynthesisOptions opts;
    opts.targetInstructions = 5000;
    opts.emitter.pattern.usePatterns = false; // prior-work baseline
    auto syn = synth::synthesize(prof, opts);
    auto stats = pipeline::runSource(syn.cSource, "clone",
                                     opt::OptLevel::O0, isa::targetX86());
    EXPECT_GT(stats.instructions, 100u);
}

} // namespace
} // namespace bsyn
