/** @file Workload-suite tests: every MiBench-analogue instance compiles,
 *  runs, produces its expected output, and is invariant across
 *  optimization levels and ISAs. */

#include <gtest/gtest.h>

#include "pipeline/pipeline.hh"
#include "support/error.hh"

namespace bsyn
{
namespace
{

TEST(Suite, HasThirtyTwoInstancesLikeFigure4)
{
    EXPECT_EQ(workloads::mibenchSuite().size(), 32u);
    EXPECT_EQ(workloads::benchmarkNames().size(), 13u);
}

TEST(Suite, LookupByName)
{
    const auto &w = workloads::findWorkload("crc32/large");
    EXPECT_EQ(w.benchmark, "crc32");
    EXPECT_THROW(workloads::findWorkload("nope/large"), FatalError);
}

class WorkloadRuns : public ::testing::TestWithParam<size_t>
{};

TEST_P(WorkloadRuns, CorrectAndInvariantAcrossLevelsAndIsas)
{
    const auto &w = workloads::mibenchSuite()[GetParam()];

    auto o0 = pipeline::runSource(w.source, w.name(), opt::OptLevel::O0,
                                  isa::targetX86());
    EXPECT_NE(o0.output.find(w.expectedOutput), std::string::npos)
        << w.name() << " printed: " << o0.output;
    EXPECT_GT(o0.instructions, 100000u) << w.name();

    // Optimized and cross-ISA runs must print the same thing.
    auto o2 = pipeline::runSource(w.source, w.name(), opt::OptLevel::O2,
                                  isa::targetX86());
    EXPECT_EQ(o2.output, o0.output) << w.name();
    EXPECT_LT(o2.instructions, o0.instructions) << w.name();

    auto ia = pipeline::runSource(w.source, w.name(), opt::OptLevel::O1,
                                  isa::targetIa64());
    EXPECT_EQ(ia.output, o0.output) << w.name();
}

std::string
workloadName(const ::testing::TestParamInfo<size_t> &info)
{
    std::string n = workloads::mibenchSuite()[info.param].name();
    for (auto &c : n)
        if (c == '/')
            c = '_';
    return n;
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadRuns,
    ::testing::Range<size_t>(0, 32),
    workloadName);

TEST(Suite, LargeInputsRunLongerThanSmall)
{
    struct Pair
    {
        const char *large, *small;
    };
    for (const auto &p :
         {Pair{"adpcm/large1", "adpcm/small1"},
          Pair{"crc32/large", "crc32/small"},
          Pair{"sha/large", "sha/small"},
          Pair{"dijkstra/large", "dijkstra/small"}}) {
        auto l = pipeline::runSource(
            workloads::findWorkload(p.large).source, p.large,
            opt::OptLevel::O0, isa::targetX86());
        auto s = pipeline::runSource(
            workloads::findWorkload(p.small).source, p.small,
            opt::OptLevel::O0, isa::targetX86());
        EXPECT_GT(l.instructions, s.instructions * 2) << p.large;
    }
}

TEST(Suite, FftIsTheFpHeavyBenchmark)
{
    ir::Module fft = workloads::compileWorkload(
        workloads::findWorkload("fft/small1"));
    auto fft_prof = profile::profileModule(fft);
    ir::Module sha = workloads::compileWorkload(
        workloads::findWorkload("sha/small"));
    auto sha_prof = profile::profileModule(sha);
    EXPECT_GT(fft_prof.mix.fpFraction(), 0.05);
    EXPECT_GT(fft_prof.mix.fpFraction(),
              sha_prof.mix.fpFraction() + 0.04);
}

TEST(Suite, WorkloadsAreDeterministic)
{
    const auto &w = workloads::findWorkload("qsort/large");
    auto a = pipeline::runSource(w.source, w.name(), opt::OptLevel::O0,
                                 isa::targetX86());
    auto b = pipeline::runSource(w.source, w.name(), opt::OptLevel::O0,
                                 isa::targetX86());
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.instructions, b.instructions);
}

} // namespace
} // namespace bsyn
