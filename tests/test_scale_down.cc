/** @file SFGL scale-down tests, including the paper's Figure 2 example. */

#include <gtest/gtest.h>

#include "synth/scale_down.hh"

namespace bsyn
{
namespace
{

using profile::Sfgl;
using profile::SfglBlock;
using profile::SfglEdge;
using profile::SfglLoop;
using profile::SfglTerm;

/**
 * The paper's Figure 2(a): A(500) branches to B(420)/C(80), both join
 * D(500); D enters loop E(5000) -> F(1000)/G(4000) -> H(5000) -> E;
 * loop exits to I(500).
 */
Sfgl
figure2()
{
    Sfgl g;
    auto add = [&](uint64_t exec, SfglTerm term) {
        SfglBlock b;
        b.id = static_cast<int>(g.blocks.size());
        b.funcId = 0;
        b.irBlockId = b.id;
        b.execCount = exec;
        b.term = term;
        g.blocks.push_back(b);
        return b.id;
    };
    int A = add(500, SfglTerm::Branch);
    int B = add(420, SfglTerm::Jump);
    int C = add(80, SfglTerm::Jump);
    int D = add(500, SfglTerm::Jump);
    int E = add(5000, SfglTerm::Branch);
    int F = add(1000, SfglTerm::Jump);
    int G = add(4000, SfglTerm::Jump);
    int H = add(5000, SfglTerm::Branch);
    int I = add(500, SfglTerm::Ret);

    auto edge = [&](int from, int to, uint64_t count) {
        g.blocks[static_cast<size_t>(from)].succs.push_back(
            SfglEdge{to, count});
    };
    edge(A, B, 420);
    edge(A, C, 80);
    edge(B, D, 420);
    edge(C, D, 80);
    edge(D, E, 500);
    edge(E, F, 1000);
    edge(E, G, 4000);
    edge(F, H, 1000);
    edge(G, H, 4000);
    edge(H, E, 4500); // back edge
    edge(H, I, 500);

    SfglLoop loop;
    loop.id = 0;
    loop.header = E;
    loop.blocks = {E, F, G, H};
    loop.entries = 500;
    loop.avgIterations = 10.0; // 5000 header execs / 500 entries
    g.loops.push_back(loop);
    for (int b : loop.blocks)
        g.blocks[static_cast<size_t>(b)].loopId = 0;
    g.funcNames.push_back("fig2");
    return g;
}

TEST(ScaleDown, PaperFigure2Example)
{
    Sfgl scaled = synth::scaleDown(figure2(), 100);
    // Figure 2(b): A=5, B=4, C removed, D=5, E=50, F=10, G=40, H=50, I=5.
    EXPECT_EQ(scaled.blocks[0].execCount, 5u);  // A
    EXPECT_EQ(scaled.blocks[1].execCount, 4u);  // B
    EXPECT_EQ(scaled.blocks[2].execCount, 0u);  // C: dropped (< R)
    EXPECT_EQ(scaled.blocks[3].execCount, 5u);  // D
    EXPECT_EQ(scaled.blocks[4].execCount, 50u); // E
    EXPECT_EQ(scaled.blocks[5].execCount, 10u); // F
    EXPECT_EQ(scaled.blocks[6].execCount, 40u); // G
    EXPECT_EQ(scaled.blocks[7].execCount, 50u); // H
    EXPECT_EQ(scaled.blocks[8].execCount, 5u);  // I
    // Loop annotation: 5 entries, still ~10 iterations per entry.
    ASSERT_EQ(scaled.loops.size(), 1u);
    EXPECT_EQ(scaled.loops[0].entries, 5u);
    EXPECT_NEAR(scaled.loops[0].avgIterations, 10.0, 0.01);
    // Edges into the dropped block C vanish.
    for (const auto &e : scaled.blocks[0].succs)
        EXPECT_NE(e.to, 2);
}

TEST(ScaleDown, OuterEntriesAbsorbFactorFirst)
{
    // A loop entered once with 1000 iterations: entries cannot shrink,
    // so the iteration count takes the whole factor.
    Sfgl g = figure2();
    g.blocks[3].succs.clear();
    g.blocks[3].succs.push_back(SfglEdge{4, 1}); // D enters E once
    g.blocks[3].execCount = 1;
    g.blocks[0].execCount = 1;
    g.blocks[1].execCount = 1;
    g.blocks[2].execCount = 0;
    g.blocks[4].execCount = 1000; // E
    g.blocks[7].execCount = 1000; // H
    g.loops[0].entries = 1;
    g.loops[0].avgIterations = 1000.0;

    Sfgl scaled = synth::scaleDown(g, 10);
    ASSERT_EQ(scaled.loops.size(), 1u);
    EXPECT_EQ(scaled.loops[0].entries, 1u);
    EXPECT_NEAR(scaled.loops[0].avgIterations, 100.0, 1.0);
}

TEST(ScaleDown, FactorOneIsIdentityOnCounts)
{
    Sfgl g = figure2();
    Sfgl scaled = synth::scaleDown(g, 1);
    for (size_t i = 0; i < g.blocks.size(); ++i)
        EXPECT_EQ(scaled.blocks[i].execCount, g.blocks[i].execCount);
}

TEST(ScaleDown, WholeLoopDisappearsUnderHugeFactor)
{
    Sfgl scaled = synth::scaleDown(figure2(), 100000);
    EXPECT_TRUE(scaled.loops.empty());
    for (const auto &b : scaled.blocks)
        EXPECT_EQ(b.execCount, 0u);
}

TEST(ScaleDown, LoopMembershipRebuilt)
{
    Sfgl scaled = synth::scaleDown(figure2(), 100);
    ASSERT_EQ(scaled.loops.size(), 1u);
    for (int b : scaled.loops[0].blocks) {
        EXPECT_EQ(scaled.blocks[static_cast<size_t>(b)].loopId,
                  scaled.loops[0].id);
    }
}

TEST(ReductionFactor, TargetsInstructionBudget)
{
    using synth::chooseReductionFactor;
    EXPECT_EQ(chooseReductionFactor(1000, 1000), 1u);
    EXPECT_EQ(chooseReductionFactor(500, 1000), 1u);
    EXPECT_EQ(chooseReductionFactor(10000, 1000), 10u);
    EXPECT_EQ(chooseReductionFactor(10001, 1000), 11u); // ceil
    // The paper's clamp: R in [1, 250].
    EXPECT_EQ(chooseReductionFactor(1u << 30, 100), 250u);
    EXPECT_EQ(chooseReductionFactor(123, 0), 1u);
}

} // namespace
} // namespace bsyn
