/** @file Tests for the open-loop traffic replay engine: schedule
 *  arrival generation (even constant spacing, bursty on-window
 *  placement, ramp back-loading, seed-deterministic Poisson jitter),
 *  eager spec validation for schedules and mixes, the lock-free
 *  latency histogram's bucket error bound, and the engine's
 *  determinism contract — the results half is byte-identical across
 *  driver thread counts and across the direct and spool paths. */

#include <gtest/gtest.h>

#include <filesystem>
#include <thread>
#include <unistd.h>

#include "replay/engine.hh"
#include "replay/histogram.hh"
#include "replay/mix.hh"
#include "replay/schedule.hh"
#include "support/error.hh"

namespace fs = std::filesystem;

namespace bsyn
{
namespace
{

/** Fresh scratch directory under the gtest temp root, wiped on exit. */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &tag)
        : path_(std::string(::testing::TempDir()) + "bsyn_" + tag + "_" +
                std::to_string(::getpid()))
    {
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~ScratchDir()
    {
        std::error_code ec;
        fs::remove_all(path_, ec);
    }
    std::string sub(const std::string &name) const
    {
        return path_ + "/" + name;
    }

  private:
    std::string path_;
};

size_t
countInWindow(const std::vector<uint64_t> &offsets, double fromS,
              double toS)
{
    // Bisection places an arrival within ~2^-64 of its exact time;
    // 1us of tolerance swallows that and the ns truncation.
    uint64_t lo = static_cast<uint64_t>(fromS * 1e9);
    uint64_t hi = static_cast<uint64_t>(toS * 1e9) + 1000;
    size_t n = 0;
    for (uint64_t off : offsets)
        if (off >= lo && off <= hi)
            ++n;
    return n;
}

TEST(ReplaySchedule, ConstantArrivalsAreEvenlySpaced)
{
    auto s = replay::Schedule::parse("constant,rate=100");
    EXPECT_NEAR(s.offeredRate(1.0), 100.0, 1e-9);
    auto offsets = s.arrivals(1.0, 7);
    ASSERT_EQ(offsets.size(), 100u);
    for (size_t i = 0; i < offsets.size(); ++i) {
        // Arrival i lands at (i+1)/rate seconds (the last one clamps
        // inside the horizon).
        double want = std::min(double(i + 1) / 100.0, 1.0 - 1e-9);
        EXPECT_NEAR(double(offsets[i]) / 1e9, want, 1e-6) << i;
        if (i)
            EXPECT_GT(offsets[i], offsets[i - 1]);
    }
}

TEST(ReplaySchedule, BurstyArrivalsLandInOnWindows)
{
    auto s =
        replay::Schedule::parse("bursty,rate=100,on_ms=100,off_ms=400");
    // 1s covers two 500ms periods: 2 * 100ms of on-time at 100/s.
    EXPECT_NEAR(s.offeredRate(1.0), 20.0, 1e-9);
    auto offsets = s.arrivals(1.0, 11);
    ASSERT_EQ(offsets.size(), 20u);
    EXPECT_EQ(countInWindow(offsets, 0.0, 0.1), 10u);
    EXPECT_EQ(countInWindow(offsets, 0.5, 0.6), 10u);
    // The silent window gets nothing (10 arrivals on either side of
    // it, none strictly inside).
    EXPECT_EQ(countInWindow(offsets, 0.101, 0.499), 0u);
}

TEST(ReplaySchedule, RampBackloadsArrivals)
{
    auto s = replay::Schedule::parse("ramp,rate=0,end_rate=100");
    // L(t) = 50 t^2 over 1s: 50 arrivals, 12 of them (L(0.5)=12.5)
    // in the first half.
    auto offsets = s.arrivals(1.0, 3);
    ASSERT_EQ(offsets.size(), 50u);
    EXPECT_EQ(countInWindow(offsets, 0.0, 0.4999), 12u);
    EXPECT_EQ(countInWindow(offsets, 0.5, 1.0), 38u);
}

TEST(ReplaySchedule, JitterIsSeedDeterministic)
{
    auto s = replay::Schedule::parse("constant,rate=200,jitter=1");
    auto a = s.arrivals(0.5, 42);
    auto b = s.arrivals(0.5, 42);
    auto c = s.arrivals(0.5, 43);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    for (uint64_t off : a)
        EXPECT_LT(off, static_cast<uint64_t>(0.5 * 1e9));
    // Poisson with mean 100: astronomically unlikely to stray this far.
    EXPECT_GT(a.size(), 40u);
    EXPECT_LT(a.size(), 200u);
}

TEST(ReplaySchedule, RejectsMalformedSpecs)
{
    for (const char *bad : {
             "",                        // no kind
             "constant",                // missing rate
             "constant,rate=0",         // zero rate
             "constant,rate=-5",        // negative rate
             "constant,rate=abc",       // junk rate
             "sawtooth,rate=5",         // unknown kind
             "constant,rate=5,rate=6",  // duplicate key
             "constant,rate=5,bogus=1", // unknown key
             "constant,rate=5,jitter=2",
             "bursty,rate=5,on_ms=0",   // sub-ms burst window
             "ramp,rate=0,end_rate=0",  // silent ramp
             "ramp,rate=5",             // missing end_rate
         })
        EXPECT_THROW(replay::Schedule::parse(bad), FatalError) << bad;
}

TEST(ReplayMix, RejectsBadMixes)
{
    for (const char *bad : {
             "",                     // empty
             "  ",                   // blank
             "no_such_family",       // unknown family
             "fp_kernel:0",          // weights sum to zero
             "fp_kernel:0;stream_mix:0",
             "fp_kernel:x",          // junk weight
             "fp_kernel@0|stream_mix",   // mode end out of (0, 1]
             "fp_kernel@1.5|stream_mix",
             "fp_kernel@0.8|stream_mix@0.5", // ends must increase
             "fp_kernel|stream_mix@1",   // non-last mode missing end
             "fp_kernel@0.5",            // last mode must end at 1
             "fp_kernel;;stream_mix",    // empty entry
         })
        EXPECT_THROW(replay::Mix::parse(bad, 2), FatalError) << bad;
}

TEST(ReplayMix, ModesAndDrawsAreDeterministic)
{
    auto mix = replay::Mix::parse(
        "pointer_chase:3;fp_kernel@0.5|stream_mix", 2);
    // Two seeds per seedless family entry, interned in first-use
    // order: pointer_chase x2, fp_kernel x2, stream_mix x2.
    ASSERT_EQ(mix.population().size(), 6u);
    ASSERT_EQ(mix.modes().size(), 2u);
    EXPECT_EQ(mix.modeAt(0.0), 0u);
    EXPECT_EQ(mix.modeAt(0.499), 0u);
    EXPECT_EQ(mix.modeAt(0.5), 1u);
    EXPECT_EQ(mix.modeAt(1.0), 1u);

    for (uint64_t i = 0; i < 64; ++i) {
        size_t early = mix.draw(9, i, 0.1);
        EXPECT_LT(early, 4u) << "mode 0 draws only its own entries";
        EXPECT_EQ(early, mix.draw(9, i, 0.1)) << "draws are pure";
        EXPECT_GE(mix.draw(9, i, 0.9), 4u);
    }

    // A shared instance is interned once: both modes hit the same
    // population slot.
    auto shared = replay::Mix::parse("fp_kernel,seed=1@0.5|fp_kernel,seed=1", 4);
    EXPECT_EQ(shared.population().size(), 1u);
}

TEST(ReplayHistogram, BucketErrorStaysBounded)
{
    // Tiny values are exact.
    for (uint64_t v = 0; v < 16; ++v)
        EXPECT_EQ(replay::LatencyHistogram::bucketOf(v), size_t(v));

    // Any single recorded value is recovered within the 6.25% bound.
    for (uint64_t v : {100ull, 999ull, 123456ull, 999999999ull,
                       (1ull << 40) + 12345ull}) {
        replay::LatencyHistogram h;
        h.record(v);
        EXPECT_EQ(h.count(), 1u);
        EXPECT_EQ(h.max(), v);
        uint64_t q = h.quantile(0.5);
        EXPECT_NEAR(double(q), double(v), double(v) * 0.0625) << v;
        EXPECT_EQ(h.quantile(1.0), v) << "q=1 is the exact max";
    }
}

TEST(ReplayHistogram, ConcurrentRecordsAllLand)
{
    replay::LatencyHistogram h;
    constexpr int kThreads = 8;
    constexpr uint64_t kEach = 20000;
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t)
        ts.emplace_back([&h, t] {
            for (uint64_t i = 0; i < kEach; ++i)
                h.record(uint64_t(t) * 1000 + i % 997);
        });
    for (auto &t : ts)
        t.join();
    EXPECT_EQ(h.count(), uint64_t(kThreads) * kEach);
    EXPECT_EQ(h.quantile(0.0), 0u);
    EXPECT_GE(h.max(), 7000u);
    EXPECT_GT(h.mean(), 0.0);
}

TEST(ReplayEngine, ResultsHalfIsByteIdenticalAcrossThreadCounts)
{
    ScratchDir dir("replay_det");
    replay::ReplayOptions ro;
    ro.scheduleSpec = "constant,rate=40,jitter=1";
    ro.mixSpec = "fp_kernel;stream_mix";
    ro.durationS = 0.3;
    ro.seed = 1234;
    ro.population = 2;
    ro.targetInstr = 20000;
    ro.cacheDir = dir.sub("cache"); // shared: repeat runs recompute 0

    std::string baseline;
    for (unsigned threads : {1u, 4u, 8u}) {
        ro.threads = threads;
        replay::ReplayReport rep = replay::runReplay(ro);
        EXPECT_EQ(rep.okCount, rep.arrivals.size());
        EXPECT_EQ(rep.failCount, 0u);
        std::string results = rep.resultsJson().dump(2);
        if (baseline.empty())
            baseline = results;
        else
            EXPECT_EQ(results, baseline) << threads << " threads";
    }

    // The spool path — same spec, same seed, served by in-process
    // workers — produces the same results bytes as the direct path.
    ro.threads = 2;
    ro.spoolDir = dir.sub("spool");
    ro.spoolWorkers = 2;
    replay::ReplayReport viaSpool = replay::runReplay(ro);
    EXPECT_EQ(viaSpool.resultsJson().dump(2), baseline);
    // Queue and total latencies exist even though the worker's
    // internal stages are invisible to the driver.
    ASSERT_EQ(viaSpool.stages.size(), 5u);
    EXPECT_EQ(viaSpool.stages[0].stage, "queue");
    EXPECT_GT(viaSpool.stages[0].count, 0u);
    EXPECT_EQ(viaSpool.stages[4].stage, "total");
    EXPECT_GT(viaSpool.stages[4].count, 0u);
}

TEST(ReplayEngine, ScheduleCountsMatchReport)
{
    ScratchDir dir("replay_counts");
    replay::ReplayOptions ro;
    ro.scheduleSpec = "bursty,rate=50,on_ms=100,off_ms=100";
    ro.mixSpec = "fp_kernel,seed=1@0.5|stream_mix,seed=1";
    ro.durationS = 0.4;
    ro.threads = 2;
    ro.targetInstr = 20000;
    ro.cacheDir = dir.sub("cache");
    replay::ReplayReport rep = replay::runReplay(ro);

    // Two 100ms bursts at 50/s: 5 arrivals each, split across the
    // mode switch at t = 0.2s.
    ASSERT_EQ(rep.arrivals.size(), 10u);
    ASSERT_EQ(rep.modeCounts.size(), 2u);
    EXPECT_EQ(rep.modeCounts[0], 5u);
    EXPECT_EQ(rep.modeCounts[1], 5u);
    ASSERT_EQ(rep.instanceNames.size(), 2u);
    EXPECT_EQ(rep.drawCounts[0], 5u);
    EXPECT_EQ(rep.drawCounts[1], 5u);
    EXPECT_EQ(rep.streamDigest.size(), 64u);
    EXPECT_GT(rep.offeredRate, 0.0);
    EXPECT_GT(rep.achievedRate, 0.0);

    Json j = rep.toJson();
    EXPECT_EQ(j.get("schema").asString(), "bsyn.traffic.v1");
    EXPECT_EQ(j.get("arrivals").asInt(), 10);
    EXPECT_TRUE(j.has("bench"));
    EXPECT_TRUE(j.get("bench").has("stages"));
    EXPECT_FALSE(rep.resultsJson().has("bench"));
}

TEST(ReplayEngine, RejectsInvalidConfiguration)
{
    replay::ReplayOptions ro;
    ro.mixSpec = "fp_kernel";
    ro.durationS = 0.0;
    EXPECT_THROW(replay::runReplay(ro), FatalError);
    ro.durationS = 0.1;
    ro.mixSpec = "";
    EXPECT_THROW(replay::runReplay(ro), FatalError);
    ro.mixSpec = "fp_kernel";
    ro.scheduleSpec = "constant,rate=1e12"; // over the arrival cap
    EXPECT_THROW(replay::runReplay(ro), FatalError);
}

} // namespace
} // namespace bsyn
