/**
 * @file
 * The structurally-random MiniC program generator behind the
 * differential fuzz corpus. Shared between test_fuzz (levels/targets
 * differential) and test_differential_engine (reference vs predecoded
 * interpreter differential) so both suites exercise the same corpus.
 */

#ifndef BSYN_TESTS_PROGRAM_FUZZER_HH
#define BSYN_TESTS_PROGRAM_FUZZER_HH

#include <string>
#include <vector>

#include "support/rng.hh"
#include "support/string_util.hh"

namespace bsyn
{

/** Generates small, always-terminating random MiniC programs. */
class ProgramFuzzer
{
  public:
    explicit ProgramFuzzer(uint64_t seed) : rng(seed) {}

    std::string
    generate()
    {
        body.clear();
        intVars = {"a", "b", "c"};
        uintVars = {"u", "v"};
        fpVars = {"x", "y"};
        depth = 0;

        std::string src;
        src += "uint g[64];\n";
        src += "double gd[16];\n";
        src += "int main() {\n";
        src += "  int a = 3, b = -7, c = 12345;\n";
        src += "  uint u = 0xABCD, v = 177u;\n";
        src += "  double x = 1.5, y = -0.25;\n";
        src += "  int i0, i1;\n";
        int stmts = 4 + static_cast<int>(rng.nextBounded(6));
        for (int s = 0; s < stmts; ++s)
            statement(2);
        src += body;
        src += "  printf(\"%d %d %u %u %d %d %u\\n\", a, b, u, v, "
               "(int)x, (int)y, g[7]);\n";
        src += "  return 0;\n}\n";
        return src;
    }

  private:
    void
    emit(const std::string &line)
    {
        body += std::string(2 + 2 * static_cast<size_t>(depth), ' ') +
                line + "\n";
    }

    std::string
    intExpr(int budget)
    {
        if (budget <= 0 || rng.nextBool(0.35)) {
            switch (rng.nextBounded(3)) {
              case 0:
                return intVars[rng.nextBounded(intVars.size())];
              case 1:
                return strprintf("%d",
                                 int(rng.nextRange(-100, 100)));
              default:
                return strprintf("(int)g[%llu]",
                                 (unsigned long long)rng.nextBounded(64));
            }
        }
        static const char *ops[] = {"+", "-", "*", "/", "%",
                                    "&", "|", "^"};
        const char *op = ops[rng.nextBounded(8)];
        std::string lhs = intExpr(budget - 1);
        std::string rhs = intExpr(budget - 1);
        if (op[0] == '/' || op[0] == '%')
            rhs = "(" + rhs + " | 1)"; // avoid INT_MIN/-1 style UB paths
        if (rng.nextBool(0.15))
            return "(" + lhs + " " + op + " " + rhs + ") >> " +
                   strprintf("%llu",
                             (unsigned long long)(1 + rng.nextBounded(7)));
        return "(" + lhs + " " + op + " " + rhs + ")";
    }

    std::string
    uintExpr(int budget)
    {
        if (budget <= 0 || rng.nextBool(0.35)) {
            switch (rng.nextBounded(3)) {
              case 0:
                return uintVars[rng.nextBounded(uintVars.size())];
              case 1:
                return strprintf("%lluu", (unsigned long long)
                                              rng.nextBounded(100000));
              default:
                return strprintf("g[%llu]",
                                 (unsigned long long)rng.nextBounded(64));
            }
        }
        static const char *ops[] = {"+", "-", "*", "&", "|", "^", ">>",
                                    "<<"};
        const char *op = ops[rng.nextBounded(8)];
        std::string lhs = uintExpr(budget - 1);
        std::string rhs;
        if (op[0] == '>' || op[0] == '<')
            rhs = strprintf("%llu",
                            (unsigned long long)(1 + rng.nextBounded(7)));
        else
            rhs = uintExpr(budget - 1);
        return "(" + lhs + " " + op + " " + rhs + ")";
    }

    std::string
    fpExpr(int budget)
    {
        if (budget <= 0 || rng.nextBool(0.4)) {
            switch (rng.nextBounded(3)) {
              case 0:
                return fpVars[rng.nextBounded(fpVars.size())];
              case 1:
                return strprintf("%llu.%llu",
                                 (unsigned long long)rng.nextBounded(50),
                                 (unsigned long long)rng.nextBounded(10));
              default:
                return "(double)" + intExpr(0);
            }
        }
        static const char *ops[] = {"+", "-", "*"};
        return "(" + fpExpr(budget - 1) + " " + ops[rng.nextBounded(3)] +
               " " + fpExpr(budget - 1) + ")";
    }

    std::string
    condExpr()
    {
        static const char *rels[] = {"<", "<=", ">", ">=", "==", "!="};
        switch (rng.nextBounded(3)) {
          case 0:
            return intExpr(1) + " " + rels[rng.nextBounded(6)] + " " +
                   intExpr(1);
          case 1:
            return uintExpr(1) + " " + rels[rng.nextBounded(6)] + " " +
                   uintExpr(1);
          default:
            return fpExpr(1) + " " + rels[rng.nextBounded(6)] + " " +
                   fpExpr(1);
        }
    }

    void
    statement(int budget)
    {
        int kind = static_cast<int>(rng.nextBounded(10));
        if (budget <= 0)
            kind = kind % 4; // leaf statements only
        switch (kind) {
          case 0:
            emit(intVars[rng.nextBounded(intVars.size())] + " = " +
                 intExpr(2) + ";");
            break;
          case 1:
            emit(uintVars[rng.nextBounded(uintVars.size())] + " = " +
                 uintExpr(2) + ";");
            break;
          case 2:
            emit(fpVars[rng.nextBounded(fpVars.size())] + " = " +
                 fpExpr(2) + ";");
            break;
          case 3:
            emit(strprintf("g[%llu] = ",
                           (unsigned long long)rng.nextBounded(64)) +
                 uintExpr(2) + ";");
            break;
          case 4:
          case 5: {
            // Bounded counted loop.
            const char *iter = depth % 2 == 0 ? "i0" : "i1";
            emit(strprintf("for (%s = 0; %s < %llu; %s++) {", iter, iter,
                           (unsigned long long)(2 + rng.nextBounded(12)),
                           iter));
            ++depth;
            int n = 1 + static_cast<int>(rng.nextBounded(3));
            for (int s = 0; s < n; ++s)
                statement(budget - 1);
            --depth;
            emit("}");
            break;
          }
          case 6:
          case 7: {
            emit("if (" + condExpr() + ") {");
            ++depth;
            statement(budget - 1);
            --depth;
            if (rng.nextBool(0.5)) {
                emit("} else {");
                ++depth;
                statement(budget - 1);
                --depth;
            }
            emit("}");
            break;
          }
          case 8:
            emit(strprintf("gd[%llu] = ",
                           (unsigned long long)rng.nextBounded(16)) +
                 fpExpr(2) + ";");
            break;
          default:
            emit(intVars[rng.nextBounded(intVars.size())] +
                 " += " + intExpr(1) + ";");
            break;
        }
    }

    Rng rng;
    std::string body;
    std::vector<std::string> intVars, uintVars, fpVars;
    int depth = 0;
};

} // namespace bsyn

#endif // BSYN_TESTS_PROGRAM_FUZZER_HH
