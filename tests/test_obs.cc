/** @file Tests for the observability layer: the chained metrics
 *  registry (exact counts under concurrency, scoped views that also
 *  aggregate into a parent, snapshot serialization round-trip), the
 *  trace-event session (span structure, args, disabled-path no-op),
 *  the leveled logger (threshold filtering, whole lines under
 *  concurrent writers), and the hard invariant that tracing and
 *  metrics never change a results artifact byte: suite output
 *  (sharded and merged included), fidelity reports and replay reports
 *  are identical with tracing on and off at any thread count. */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>
#include <sstream>
#include <thread>
#include <unistd.h>

#include "gen/fidelity.hh"
#include "obs/log.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "pipeline/run_sink.hh"
#include "pipeline/session.hh"
#include "replay/engine.hh"
#include "serve/merge.hh"
#include "serve/shard.hh"
#include "support/error.hh"
#include "support/json.hh"
#include "support/string_util.hh"
#include "workloads/suite.hh"

namespace fs = std::filesystem;

namespace bsyn
{
namespace
{

/** Fresh scratch directory under the gtest temp root, wiped on exit. */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &tag)
        : path_(std::string(::testing::TempDir()) + "bsyn_" + tag + "_" +
                std::to_string(::getpid()))
    {
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~ScratchDir()
    {
        std::error_code ec;
        fs::remove_all(path_, ec);
    }
    const std::string &str() const { return path_; }
    std::string sub(const std::string &name) const
    {
        return path_ + "/" + name;
    }

  private:
    std::string path_;
};

/** Ensure a test can never leave the process-wide trace armed. */
class TraceGuard
{
  public:
    ~TraceGuard() { obs::Trace::end(); }
};

std::vector<workloads::Workload>
smallBatch()
{
    return {workloads::findWorkload("crc32/small"),
            workloads::findWorkload("bitcount/small"),
            workloads::findWorkload("stringsearch/small")};
}

/** One `bsyn suite -o`-equivalent run: DirectorySink + status file. */
void
runSuiteTo(const std::string &outDir, unsigned threads)
{
    auto batch = smallBatch();
    serve::ShardedBatch sharded = serve::filterShard(batch, {});
    pipeline::SessionOptions so;
    so.threads = threads;
    so.synthesis.targetInstructions = 30000;
    pipeline::Session session(std::move(so));
    pipeline::DirectorySink sink(outDir);
    auto statuses = session.processSuite(sharded.workloads, sink);
    serve::makeSuiteStatus(sharded, statuses)
        .saveTo(outDir + "/" + serve::kSuiteStatusFile);
}

/** Byte-compare two directories (same file set, same contents). */
void
expectIdenticalDirs(const std::string &a, const std::string &b)
{
    std::set<std::string> filesA, filesB;
    for (const auto &e : fs::directory_iterator(a))
        filesA.insert(e.path().filename().string());
    for (const auto &e : fs::directory_iterator(b))
        filesB.insert(e.path().filename().string());
    EXPECT_EQ(filesA, filesB);
    for (const auto &name : filesA) {
        SCOPED_TRACE(name);
        EXPECT_EQ(readFile(a + "/" + name), readFile(b + "/" + name));
    }
}

// ------------------------------------------------------------ registry

TEST(Metrics, CountersGaugesAndHistogramsByName)
{
    obs::Registry reg; // detached: no parent chain
    obs::Counter &c = reg.counter("test.things.done");
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    // find-or-create: the same name is the same metric.
    EXPECT_EQ(&reg.counter("test.things.done"), &c);
    EXPECT_NE(&reg.counter("test.other"), &c);

    obs::Gauge &g = reg.gauge("test.depth");
    g.set(7);
    EXPECT_EQ(g.value(), 7);
    g.add(-3);
    EXPECT_EQ(g.value(), 4);

    obs::LatencyHistogram &h = reg.histogram("test.latency");
    h.record(1000);
    h.record(3000);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.max(), 3000u);
    EXPECT_DOUBLE_EQ(h.mean(), 2000.0);
}

TEST(Metrics, ChainedRegistriesAggregateIntoTheParent)
{
    obs::Registry parent;
    obs::Registry childA(&parent);
    obs::Registry childB(&parent);

    childA.counter("jobs").add(3);
    childB.counter("jobs").add(4);
    // Each scope stays exact; the parent sees the union.
    EXPECT_EQ(childA.counter("jobs").value(), 3u);
    EXPECT_EQ(childB.counter("jobs").value(), 4u);
    EXPECT_EQ(parent.counter("jobs").value(), 7u);

    childA.histogram("lat").record(500);
    childB.histogram("lat").record(900);
    EXPECT_EQ(childA.histogram("lat").count(), 1u);
    EXPECT_EQ(parent.histogram("lat").count(), 2u);
    EXPECT_EQ(parent.histogram("lat").max(), 900u);

    // Two-level chain: grandchild updates land in every ancestor.
    obs::Registry grandchild(&childA);
    grandchild.counter("jobs").add(10);
    EXPECT_EQ(grandchild.counter("jobs").value(), 10u);
    EXPECT_EQ(childA.counter("jobs").value(), 13u);
    EXPECT_EQ(parent.counter("jobs").value(), 17u);
}

TEST(Metrics, SnapshotRoundTripsThroughJson)
{
    obs::Registry reg;
    reg.counter("b.second").add(2);
    reg.counter("a.first").add(1);
    reg.gauge("depth").set(-5);
    reg.histogram("lat").record(1 << 20);

    Json snap = reg.snapshot();
    EXPECT_EQ(snap.get("schema").asString(), "bsyn.metrics.v1");
    // std::map ordering: keys are sorted regardless of creation order.
    auto names = snap.get("counters").keys();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "a.first");
    EXPECT_EQ(names[1], "b.second");
    EXPECT_EQ(snap.get("counters").get("b.second").asNumber(), 2.0);
    EXPECT_EQ(snap.get("gauges").get("depth").asNumber(), -5.0);
    EXPECT_EQ(snap.get("histograms").get("lat").get("count").asNumber(),
              1.0);

    // Serialize, parse, re-serialize: byte-identical.
    std::string text = snap.dump(-1);
    EXPECT_EQ(Json::parse(text).dump(-1), text);
    // Equal state dumps to equal bytes.
    EXPECT_EQ(reg.snapshot().dump(-1), text);
}

TEST(Metrics, ResetZeroesTheScope)
{
    obs::Registry reg;
    reg.counter("c").add(5);
    reg.gauge("g").set(9);
    reg.histogram("h").record(100);
    reg.reset();
    EXPECT_EQ(reg.counter("c").value(), 0u);
    EXPECT_EQ(reg.gauge("g").value(), 0);
    EXPECT_EQ(reg.histogram("h").count(), 0u);
}

TEST(Metrics, ConcurrentHammerKeepsExactCounts)
{
    constexpr unsigned kThreads = 8;
    constexpr uint64_t kPerThread = 20000;

    obs::Registry parent;
    obs::Registry reg(&parent);
    obs::Counter &c = reg.counter("hammer.count");
    obs::LatencyHistogram &h = reg.histogram("hammer.lat");

    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            for (uint64_t i = 0; i < kPerThread; ++i) {
                c.add();
                h.record(t * 1000 + i);
            }
        });
    for (auto &th : threads)
        th.join();

    EXPECT_EQ(c.value(), kThreads * kPerThread);
    EXPECT_EQ(h.count(), kThreads * kPerThread);
    EXPECT_EQ(parent.counter("hammer.count").value(),
              kThreads * kPerThread);
    EXPECT_EQ(parent.histogram("hammer.lat").count(),
              kThreads * kPerThread);
}

// --------------------------------------------------------------- trace

TEST(Trace, DisabledPathIsANoOp)
{
    ASSERT_FALSE(obs::Trace::enabled());
    {
        obs::Span span("profile", "workload", "w");
        span.arg("cache", "hit");
        EXPECT_FALSE(span.active());
    }
    obs::Trace::instant("nothing");
    obs::Trace::complete("nothing", 0, 1);
    EXPECT_EQ(obs::Trace::pendingEvents(), 0u);
    EXPECT_EQ(obs::Trace::end(), "");
}

TEST(Trace, SpansSerializeAsChromeTraceEvents)
{
    ScratchDir dir("trace");
    TraceGuard guard;
    std::string path = dir.sub("trace.json");
    obs::Trace::begin(path);
    ASSERT_TRUE(obs::Trace::enabled());

    {
        obs::Span outer("workload", "workload", "crc32/small");
        obs::Span inner("profile");
        obs::Trace::instant("claim", {{"id", "j1"}});
    }
    obs::Trace::complete("queue-wait", 10'000, 5'000,
                         {{"arrival", "0"}});
    EXPECT_EQ(obs::Trace::pendingEvents(), 4u);

    EXPECT_EQ(obs::Trace::end(), path);
    EXPECT_FALSE(obs::Trace::enabled());

    Json root = Json::parse(readFile(path));
    EXPECT_EQ(root.get("displayTimeUnit").asString(), "ms");
    const Json &events = root.get("traceEvents");
    ASSERT_EQ(events.size(), 4u);

    std::set<std::string> names;
    for (size_t i = 0; i < events.size(); ++i) {
        const Json &ev = events.at(i);
        names.insert(ev.get("name").asString());
        EXPECT_EQ(ev.get("cat").asString(), "stage");
        EXPECT_EQ(ev.get("pid").asNumber(), 1.0);
        EXPECT_TRUE(ev.has("tid"));
        EXPECT_TRUE(ev.has("ts"));
        std::string ph = ev.get("ph").asString();
        EXPECT_TRUE(ph == "X" || ph == "i");
        if (ph == "X") {
            EXPECT_TRUE(ev.has("dur"));
        }
        if (ev.get("name").asString() == "workload") {
            EXPECT_EQ(ev.get("args").get("workload").asString(),
                      "crc32/small");
        }
        if (ev.get("name").asString() == "queue-wait") {
            EXPECT_EQ(ev.get("ts").asNumber(), 10.0); // µs
            EXPECT_EQ(ev.get("dur").asNumber(), 5.0);
        }
    }
    EXPECT_EQ(names, (std::set<std::string>{"workload", "profile",
                                            "claim", "queue-wait"}));
}

TEST(Trace, ConcurrentSpansAllLand)
{
    constexpr unsigned kThreads = 8;
    constexpr unsigned kPerThread = 500;

    ScratchDir dir("trace_mt");
    TraceGuard guard;
    std::string path = dir.sub("trace.json");
    obs::Trace::begin(path);

    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t)
        threads.emplace_back([&] {
            for (unsigned i = 0; i < kPerThread; ++i)
                obs::Span span("hammer");
        });
    for (auto &th : threads)
        th.join();

    EXPECT_EQ(obs::Trace::pendingEvents(), kThreads * kPerThread);
    EXPECT_EQ(obs::Trace::end(), path);
    Json root = Json::parse(readFile(path));
    EXPECT_EQ(root.get("traceEvents").size(), kThreads * kPerThread);
}

// ---------------------------------------------------------------- log

TEST(Log, ParseLevelNamesAndAliases)
{
    EXPECT_EQ(obs::parseLogLevel("debug"), obs::LogLevel::Debug);
    EXPECT_EQ(obs::parseLogLevel("info"), obs::LogLevel::Info);
    EXPECT_EQ(obs::parseLogLevel("warn"), obs::LogLevel::Warn);
    EXPECT_EQ(obs::parseLogLevel("warning"), obs::LogLevel::Warn);
    EXPECT_EQ(obs::parseLogLevel("error"), obs::LogLevel::Error);
    EXPECT_EQ(obs::parseLogLevel("silent"), obs::LogLevel::Silent);
    EXPECT_EQ(obs::parseLogLevel("quiet"), obs::LogLevel::Silent);
    EXPECT_THROW(obs::parseLogLevel("loud"), FatalError);
    EXPECT_THROW(obs::parseLogLevel(""), FatalError);
}

TEST(Log, ThresholdFiltersRecords)
{
    ScratchDir dir("log");
    std::string path = dir.sub("log.txt");
    std::FILE *f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    obs::setLogSink(f);
    obs::setLogLevel(obs::LogLevel::Warn);

    EXPECT_FALSE(obs::logEnabled(obs::LogLevel::Info));
    EXPECT_TRUE(obs::logEnabled(obs::LogLevel::Warn));
    obs::logf(obs::LogLevel::Info, "dropped %d", 1);
    obs::logf(obs::LogLevel::Warn, "kept %d", 2);
    obs::logf(obs::LogLevel::Error, "kept %d", 3);

    obs::setLogLevel(obs::LogLevel::Silent);
    obs::logf(obs::LogLevel::Error, "silent drops everything");

    obs::setLogSink(nullptr);
    obs::setLogLevel(obs::LogLevel::Info);
    std::fclose(f);

    EXPECT_EQ(readFile(path), "kept 2\nkept 3\n");
}

TEST(Log, ConcurrentRecordsNeverInterleave)
{
    constexpr unsigned kThreads = 8;
    constexpr unsigned kPerThread = 400;

    ScratchDir dir("log_mt");
    std::string path = dir.sub("log.txt");
    std::FILE *f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    obs::setLogSink(f);

    // Long enough lines that torn writes would show under stdio.
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            for (unsigned i = 0; i < kPerThread; ++i)
                obs::logf(obs::LogLevel::Info,
                          "thread=%u line=%u "
                          "padding-padding-padding-padding-padding-"
                          "padding-padding-padding end=%u",
                          t, i, t);
        });
    for (auto &th : threads)
        th.join();
    obs::setLogSink(nullptr);
    std::fclose(f);

    // Every line must be exactly one record: starts with thread=,
    // ends with the matching end= marker, and all lines arrive.
    std::istringstream in(readFile(path));
    std::string line;
    size_t lines = 0;
    while (std::getline(in, line)) {
        ++lines;
        SCOPED_TRACE(line);
        ASSERT_EQ(line.rfind("thread=", 0), 0u);
        unsigned t = 0, i = 0, e = kThreads;
        ASSERT_EQ(std::sscanf(line.c_str(),
                              "thread=%u line=%u "
                              "padding-padding-padding-padding-padding-"
                              "padding-padding-padding end=%u",
                              &t, &i, &e),
                  3);
        EXPECT_EQ(t, e);
        EXPECT_LT(t, kThreads);
        EXPECT_LT(i, kPerThread);
    }
    EXPECT_EQ(lines, size_t(kThreads) * kPerThread);
}

// -------------------------------------------- results-half invariants

TEST(ObsInvariants, SuiteArtifactsAreIdenticalWithTracingOnAndOff)
{
    ScratchDir dir("obs_suite");
    TraceGuard guard;

    // Baseline: tracing off, 8 threads.
    runSuiteTo(dir.sub("off"), 8);

    // Tracing on, single thread: same bytes.
    obs::Trace::begin(dir.sub("trace.json"));
    runSuiteTo(dir.sub("on"), 1);
    EXPECT_GT(obs::Trace::pendingEvents(), 0u);
    obs::Trace::end();

    expectIdenticalDirs(dir.sub("off"), dir.sub("on"));
}

TEST(ObsInvariants, MergedShardsAreIdenticalWithTracingOn)
{
    ScratchDir dir("obs_merge");
    TraceGuard guard;

    runSuiteTo(dir.sub("unsharded"), 4);

    obs::Trace::begin(dir.sub("trace.json"));
    auto batch = smallBatch();
    for (unsigned i = 1; i <= 2; ++i) {
        serve::ShardedBatch sharded =
            serve::filterShard(batch, {i, 2});
        pipeline::SessionOptions so;
        so.threads = 2;
        so.synthesis.targetInstructions = 30000;
        pipeline::Session session(std::move(so));
        std::string out = dir.sub("shard" + std::to_string(i));
        pipeline::DirectorySink sink(out);
        auto statuses = session.processSuite(sharded.workloads, sink);
        serve::makeSuiteStatus(sharded, statuses)
            .saveTo(out + "/" + serve::kSuiteStatusFile);
    }
    serve::mergeSuiteDirs(dir.sub("merged"),
                          {dir.sub("shard1"), dir.sub("shard2")});
    obs::Trace::end();

    expectIdenticalDirs(dir.sub("unsharded"), dir.sub("merged"));
}

TEST(ObsInvariants, FidelityResultsAreIdenticalWithTracingOnAndOff)
{
    ScratchDir dir("obs_fid");
    TraceGuard guard;
    auto batch = smallBatch();

    auto score = [&](unsigned threads) {
        pipeline::SessionOptions so;
        so.threads = threads;
        pipeline::Session session(std::move(so));
        gen::FidelityOptions fo;
        fo.synthesis.targetInstructions = 30000;
        fo.timing = false;
        return gen::scoreFidelity(session, batch, fo)
            .resultsJson()
            .dump(-1);
    };

    std::string off = score(8);
    obs::Trace::begin(dir.sub("trace.json"));
    std::string on = score(1);
    obs::Trace::end();
    EXPECT_EQ(off, on);
}

TEST(ObsInvariants, ReplayResultsAreIdenticalWithTracingOnAndOff)
{
    ScratchDir dir("obs_replay");
    TraceGuard guard;

    auto run = [&] {
        replay::ReplayOptions ro;
        ro.scheduleSpec = "constant,rate=40";
        ro.mixSpec = "crc32/small";
        ro.durationS = 0.2;
        ro.threads = 2;
        ro.targetInstr = 20000;
        return replay::runReplay(ro).resultsJson().dump(-1);
    };

    std::string off = run();
    obs::Trace::begin(dir.sub("trace.json"));
    std::string on = run();
    obs::Trace::end();
    EXPECT_EQ(off, on);
}

/** The replay engine's run-local registry keeps per-run stage counts
 *  exact even though the process-wide registry accumulates across
 *  runs in one binary. */
TEST(ObsInvariants, ReplayStageCountsAreScopedPerRun)
{
    replay::ReplayOptions ro;
    ro.scheduleSpec = "constant,rate=40";
    ro.mixSpec = "crc32/small";
    ro.durationS = 0.2;
    ro.threads = 2;
    ro.targetInstr = 20000;

    replay::ReplayReport first = replay::runReplay(ro);
    replay::ReplayReport second = replay::runReplay(ro);
    ASSERT_EQ(first.arrivals.size(), second.arrivals.size());
    for (const auto &s : second.stages) {
        if (s.stage == "total") {
            EXPECT_EQ(s.count, second.arrivals.size());
        }
    }
}

} // namespace
} // namespace bsyn
