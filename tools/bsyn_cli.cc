/**
 * @file
 * bsyn — command-line front end to the framework. Each subcommand is one
 * stage of the paper's Figure 1 flow, operating on files so the stages
 * can run on different sides of an organizational wall:
 *
 *   bsyn run <prog.c> [-O0..-O3] [--target x86|x86_64|ia64]
 *       compile + execute a MiniC program, print its output and counts
 *   bsyn profile <prog.c> -o <profile.json>
 *       profile at -O0 and write the statistical profile
 *   bsyn synth <profile.json> -o <clone.c> [--target-instr N] [--seed S]
 *       generate the synthetic clone from a profile
 *   bsyn compare <a.c> <b.c>
 *       run both plagiarism detectors on a source pair
 *   bsyn time <prog.c> [-O0..-O3]
 *       run the program on all five Table III machine models
 *   bsyn suite [-o <dir>] [--threads N] [--seed S] [--target-instr N]
 *       profile + synthesize the whole MiBench-analogue suite in one
 *       batch, fanned across a thread pool; --family swaps in
 *       generated workload-family instances
 *   bsyn list
 *       print every suite instance and registered generator family
 *       (with knob schemas and presets)
 *   bsyn gen <family>[,knob=v...][,seed=S] [-o prog.c]
 *       generate one workload-family instance and write its MiniC
 *       source (stdout by default)
 *   bsyn fidelity [-o report.json] [--family <spec>] [--gen-count N]
 *       score clone-vs-original profile agreement per metric across
 *       the Figure-4 suite plus any generated instances, as JSON
 *   bsyn merge -o <out> <in>... [--fidelity]
 *       reunify per-shard suite output directories (or, with
 *       --fidelity, sharded fidelity reports) into the artifact an
 *       unsharded run would have produced, byte-identical
 *   bsyn serve --spool <dir>
 *       long-running worker: claim jobs from the spool directory,
 *       execute them against one warm session, write results, survive
 *       failing workloads; drains gracefully on SIGINT/SIGTERM or the
 *       spool's stop flag
 *   bsyn submit <kind> <workload> --spool <dir>
 *       drop a profile/synth/fidelity job into a spool (optionally
 *       --wait for its result; exits 3 when the result can no longer
 *       arrive — stop flag set with the job unclaimed, or job gone)
 *   bsyn replay --mix <spec> [--schedule <spec>] [--duration SECS]
 *       open-loop traffic replay: submit a seed-deterministic arrival
 *       stream of generated/suite workloads against one warm session
 *       (or, with --spool, through in-process serve workers) and
 *       report per-stage latency percentiles and achieved rate
 *
 * suite and fidelity accept --shard i/N: the resolved batch is
 * partitioned by a stable hash of each workload's canonical name, so N
 * processes (or machines) sharing a cache directory each compute a
 * disjoint subset, and `bsyn merge` reassembles the unsharded artifact.
 *
 * profile, synth, suite and fidelity run through a pipeline::Session
 * and accept
 * --cache-dir <dir> (or the BSYN_CACHE_DIR environment variable):
 * profiles and clones are stored content-addressed, so re-running with
 * unchanged inputs recomputes nothing and produces byte-identical
 * output. --no-cache disables the cache even when the variable is set.
 */

#include <cctype>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gen/fidelity.hh"
#include "gen/registry.hh"
#include "isa/lowering.hh"
#include "obs/log.hh"
#include "obs/trace.hh"
#include "pipeline/pipeline.hh"
#include "pipeline/run_sink.hh"
#include "pipeline/session.hh"
#include "replay/engine.hh"
#include "serve/merge.hh"
#include "serve/shard.hh"
#include "serve/spool.hh"
#include "serve/worker.hh"
#include "similarity/report.hh"
#include "support/error.hh"
#include "support/string_util.hh"
#include "support/table.hh"

using namespace bsyn;

namespace
{

struct Args
{
    std::vector<std::string> positional;
    std::string output;
    std::string target = "x86";
    opt::OptLevel level = opt::OptLevel::O0;
    uint64_t targetInstr = 120000;
    uint64_t seed = 0xb5e9c0de;
    unsigned threads = 0; ///< 0 = one per hardware thread
    std::string cacheDir; ///< empty = no artifact cache
    bool noCache = false; ///< overrides --cache-dir / BSYN_CACHE_DIR
    bool levelSet = false; ///< an explicit -O flag was passed
    bool noTiming = false; ///< fidelity: skip the timing CPI metric

    /** Base slice checkpoint interval for profiling (retired
     *  instructions); 0 disables slicing (single-phase profiles). */
    uint64_t phaseSlices = 4096;
    bool showPhases = false;    ///< profile/fidelity: per-phase detail
    bool noPhaseSynth = false;  ///< synthesize from the aggregate only
    bool onlyFamilies = false;  ///< fidelity: skip the Figure-4 suite

    /** Generated-workload selection: each --family value, in order
     *  ("all" or "family[,knob=v...][,seed=S]"). */
    std::vector<std::string> families;
    uint64_t genCount = 1; ///< instances per family for "all"/seedless

    /** suite/fidelity: which shard of the resolved batch to run
     *  (validated eagerly at parse time; 1/1 = everything). */
    serve::ShardSpec shard;

    bool resultsOnly = false; ///< fidelity: deterministic half only
    bool mergeFidelity = false; ///< merge: inputs are fidelity reports

    std::string spool;     ///< serve/submit: spool directory
    std::string jobId;     ///< submit: explicit job id
    bool timing = false;   ///< submit: fidelity jobs score timing CPI
    bool wait = false;     ///< submit: block until the result lands
    uint64_t timeoutS = 300; ///< submit --wait: give up after this
    bool drain = false;    ///< serve: exit once the spool is empty
    uint64_t maxJobs = 0;  ///< serve: exit after N jobs (0 = no limit)
    uint64_t pollMs = 50;  ///< serve: starting idle poll interval
    uint64_t pollMaxMs = 1000; ///< serve: idle backoff cap
    double reclaimAfterS = 0.0; ///< serve: stale-claim age (0 = off)

    // replay
    std::string schedule = "constant,rate=50"; ///< arrival rate model
    std::string mix;          ///< workload mix spec (required)
    double durationS = 1.0;   ///< replay horizon in seconds
    uint64_t population = 4;  ///< seeds per seedless mix entry
    unsigned spoolWorkers = 2; ///< replay --spool: in-process workers

    // observability (every command)
    std::string traceFile; ///< --trace / BSYN_TRACE: trace-event JSON
    std::string logLevel;  ///< --log-level / BSYN_LOG
    bool quiet = false;    ///< --quiet: errors only on stderr

    /** Cache directory after --no-cache is applied. */
    std::string
    effectiveCacheDir() const
    {
        return noCache ? std::string() : cacheDir;
    }
};

/** Parse a full unsigned decimal/hex number; fatal() on junk. */
uint64_t
parseU64(const std::string &s, const char *what)
{
    // stoull would silently wrap "-1" to 2^64-1; reject any sign or
    // leading whitespace so only plain unsigned literals get through.
    if (s.empty() || !std::isalnum(static_cast<unsigned char>(s[0])))
        fatal("invalid number '%s' for %s", s.c_str(), what);
    // Base 0 would read a leading zero as octal; only 0x means hex.
    bool hex = s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X');
    try {
        size_t pos = 0;
        uint64_t v = std::stoull(s, &pos, hex ? 16 : 10);
        if (pos != s.size())
            throw std::invalid_argument(s);
        return v;
    } catch (const FatalError &) {
        throw;
    } catch (const std::exception &) {
        fatal("invalid number '%s' for %s", s.c_str(), what);
    }
}

/** Parse a finite non-negative decimal number; fatal() on junk. */
double
parseF64(const std::string &s, const char *what)
{
    if (s.empty() || !std::isdigit(static_cast<unsigned char>(s[0])))
        fatal("invalid number '%s' for %s", s.c_str(), what);
    try {
        size_t pos = 0;
        double v = std::stod(s, &pos);
        if (pos != s.size() || !std::isfinite(v) || v < 0.0)
            throw std::invalid_argument(s);
        return v;
    } catch (const FatalError &) {
        throw;
    } catch (const std::exception &) {
        fatal("invalid number '%s' for %s", s.c_str(), what);
    }
}

Args
parseArgs(int argc, char **argv, int first)
{
    Args args;
    if (const char *env = std::getenv("BSYN_CACHE_DIR"))
        args.cacheDir = env;
    if (const char *env = std::getenv("BSYN_TRACE"))
        args.traceFile = env;
    if (const char *env = std::getenv("BSYN_LOG"))
        args.logLevel = env;
    for (int i = first; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&](const char *what) {
            if (i + 1 >= argc)
                fatal("missing value after %s", what);
            return std::string(argv[++i]);
        };
        if (a == "-o") {
            args.output = next("-o");
        } else if (a == "--target") {
            args.target = next("--target");
            isa::targetByName(args.target); // reject bad names up front
        } else if (a == "--target-instr") {
            args.targetInstr =
                parseU64(next("--target-instr"), "--target-instr");
        } else if (a == "--seed") {
            args.seed = parseU64(next("--seed"), "--seed");
        } else if (a == "--cache-dir") {
            args.cacheDir = next("--cache-dir");
        } else if (a == "--no-cache") {
            args.noCache = true;
        } else if (a == "--family") {
            args.families.push_back(next("--family"));
        } else if (startsWith(a, "--family=")) {
            args.families.push_back(a.substr(strlen("--family=")));
        } else if (a == "--gen-count") {
            uint64_t n = parseU64(next("--gen-count"), "--gen-count");
            if (n < 1 || n > 64)
                fatal("--gen-count %llu is out of range (1..64)",
                      static_cast<unsigned long long>(n));
            args.genCount = n;
        } else if (a == "--no-timing") {
            args.noTiming = true;
        } else if (a == "--shard") {
            // Validated here so a malformed spec ("0/3", "4/3", "x/y",
            // "1/0") is an argument error: usage + exit 2.
            args.shard = serve::parseShardSpec(next("--shard"));
        } else if (a == "--results-only") {
            args.resultsOnly = true;
        } else if (a == "--fidelity") {
            args.mergeFidelity = true;
        } else if (a == "--spool") {
            args.spool = next("--spool");
        } else if (a == "--id") {
            args.jobId = next("--id");
            if (!serve::validJobId(args.jobId))
                fatal("--id '%s' is invalid (need 1..200 chars of "
                      "[A-Za-z0-9._-])",
                      args.jobId.c_str());
        } else if (a == "--timing") {
            args.timing = true;
        } else if (a == "--wait") {
            args.wait = true;
        } else if (a == "--timeout") {
            args.timeoutS = parseU64(next("--timeout"), "--timeout");
        } else if (a == "--drain") {
            args.drain = true;
        } else if (a == "--max-jobs") {
            args.maxJobs = parseU64(next("--max-jobs"), "--max-jobs");
        } else if (a == "--poll-ms") {
            args.pollMs = parseU64(next("--poll-ms"), "--poll-ms");
            if (args.pollMs < 1 || args.pollMs > 60000)
                fatal("--poll-ms %llu is out of range (1..60000)",
                      static_cast<unsigned long long>(args.pollMs));
        } else if (a == "--poll-max-ms") {
            args.pollMaxMs =
                parseU64(next("--poll-max-ms"), "--poll-max-ms");
            if (args.pollMaxMs < 1 || args.pollMaxMs > 600000)
                fatal("--poll-max-ms %llu is out of range (1..600000)",
                      static_cast<unsigned long long>(args.pollMaxMs));
        } else if (a == "--reclaim-after") {
            args.reclaimAfterS =
                parseF64(next("--reclaim-after"), "--reclaim-after");
        } else if (a == "--schedule") {
            args.schedule = next("--schedule");
            // Reject a malformed rate model up front: usage + exit 2.
            replay::Schedule::parse(args.schedule);
        } else if (a == "--mix") {
            args.mix = next("--mix"); // validated after the loop
        } else if (a == "--duration") {
            args.durationS = parseF64(next("--duration"), "--duration");
            if (!(args.durationS > 0.0) || args.durationS > 3600.0)
                fatal("--duration %.3f is out of range (0, 3600]",
                      args.durationS);
        } else if (a == "--population") {
            uint64_t n =
                parseU64(next("--population"), "--population");
            if (n < 1 || n > 64)
                fatal("--population %llu is out of range (1..64)",
                      static_cast<unsigned long long>(n));
            args.population = n;
        } else if (a == "--workers") {
            uint64_t n = parseU64(next("--workers"), "--workers");
            if (n < 1 || n > 64)
                fatal("--workers %llu is out of range (1..64)",
                      static_cast<unsigned long long>(n));
            args.spoolWorkers = static_cast<unsigned>(n);
        } else if (a == "--trace") {
            args.traceFile = next("--trace");
        } else if (a == "--log-level") {
            args.logLevel = next("--log-level");
        } else if (a == "--quiet") {
            args.quiet = true;
        } else if (a == "--phase-slices") {
            args.phaseSlices =
                parseU64(next("--phase-slices"), "--phase-slices");
        } else if (a == "--phases") {
            args.showPhases = true;
        } else if (a == "--no-phase-synth") {
            args.noPhaseSynth = true;
        } else if (a == "--only-families") {
            args.onlyFamilies = true;
        } else if (a == "--threads" || a == "-j") {
            uint64_t n = parseU64(next(a.c_str()), a.c_str());
            if (n > 4096)
                fatal("%s %llu is out of range (max 4096)", a.c_str(),
                      static_cast<unsigned long long>(n));
            args.threads = static_cast<unsigned>(n);
        } else if (a.size() == 3 && a[0] == '-' && a[1] == 'O') {
            args.level = opt::optLevelByName(a);
            args.levelSet = true;
        } else if (!a.empty() && a[0] == '-') {
            fatal("unknown option '%s'", a.c_str());
        } else {
            args.positional.push_back(a);
        }
    }
    // --mix resolves real workloads and depends on --population, so it
    // validates after the loop (flag order must not matter). A bad mix
    // — unknown family, weights summing to zero, malformed mode ends —
    // is an argument error: usage + exit 2.
    if (!args.mix.empty())
        replay::Mix::parse(args.mix, args.population);
    // A bad level name — flag or BSYN_LOG — is an argument error too.
    if (!args.logLevel.empty())
        obs::parseLogLevel(args.logLevel);
    return args;
}

/**
 * Resolve the --family selection into concrete workloads: "all" is a
 * fixed-seed sample across every registered family (--gen-count
 * presets each, seeded from --seed); "all-presets" is one instance of
 * every published preset of every family (full coverage, seeded from
 * --seed — what the CI fidelity smoke scores); an explicit spec
 * without a seed yields --gen-count instances at seeds 1..N; a spec
 * carrying seed=S yields exactly that instance.
 */
std::vector<workloads::Workload>
generatedSelection(const Args &args)
{
    std::vector<workloads::Workload> out;
    for (const auto &text : args.families) {
        if (text == "all") {
            auto sample = gen::Registry::global().sample(
                args.genCount, args.seed);
            out.insert(out.end(), sample.begin(), sample.end());
            continue;
        }
        if (text == "all-presets") {
            auto batch =
                gen::Registry::global().allPresets(args.seed);
            out.insert(out.end(), batch.begin(), batch.end());
            continue;
        }
        gen::InstanceSpec spec = gen::parseSpec(text);
        const gen::Family &family =
            gen::Registry::global().require(spec.family);
        if (spec.hasSeed) {
            out.push_back(family.make(spec.knobs, spec.seed));
        } else {
            for (uint64_t s = 1; s <= args.genCount; ++s)
                out.push_back(family.make(spec.knobs, s));
        }
    }
    return out;
}

int
cmdRun(const Args &args)
{
    if (args.positional.empty())
        fatal("usage: bsyn run <prog.c> [-O0..-O3] [--target T]");
    std::string src = readFile(args.positional[0]);
    auto stats = pipeline::runSource(src, args.positional[0], args.level,
                                     isa::targetByName(args.target));
    std::fputs(stats.output.c_str(), stdout);
    obs::logf(obs::LogLevel::Info,
              "[bsyn] %llu instructions (%llu loads, %llu stores, "
              "%llu branches), exit code %d",
              static_cast<unsigned long long>(stats.instructions),
              static_cast<unsigned long long>(stats.memReads),
              static_cast<unsigned long long>(stats.memWrites),
              static_cast<unsigned long long>(stats.branches),
              stats.exitCode);
    return stats.exitCode;
}

int
cmdProfile(const Args &args)
{
    if (args.positional.empty() || args.output.empty())
        fatal("usage: bsyn profile <prog.c> -o <profile.json> "
              "[--phase-slices N] [--phases] [--cache-dir D] "
              "[--no-cache]");
    pipeline::SessionOptions so;
    so.cacheDir = args.effectiveCacheDir();
    so.profiling.sliceBaseLength = args.phaseSlices;
    pipeline::Session session(so);

    bool cached = false;
    auto prof = session.profile(readFile(args.positional[0]),
                                args.positional[0], &cached);
    prof.saveTo(args.output);
    obs::logf(obs::LogLevel::Info,
              "[bsyn] wrote %s%s: %llu dynamic instructions, %zu "
              "blocks, %zu loops, %zu phase%s (%llu slices of "
              "%llu)",
              args.output.c_str(), cached ? " (from cache)" : "",
              static_cast<unsigned long long>(prof.dynamicInstructions),
              prof.sfgl.blocks.size(), prof.sfgl.loops.size(),
              prof.phaseCount(), prof.phaseCount() == 1 ? "" : "s",
              static_cast<unsigned long long>(prof.sliceCount),
              static_cast<unsigned long long>(prof.sliceLength));
    if (args.showPhases) {
        TextTable table("profile phases");
        table.setHeader({"phase", "instr", "slices", "load", "store",
                         "branch", "fp"});
        for (size_t i = 0; i < prof.phases.size(); ++i) {
            const auto &ph = prof.phases[i];
            table.addRow(
                {std::to_string(i),
                 std::to_string(ph.dynamicInstructions),
                 std::to_string(ph.sliceCount),
                 TextTable::pct(ph.mix.loadFraction()),
                 TextTable::pct(ph.mix.storeFraction()),
                 TextTable::pct(ph.mix.branchFraction()),
                 TextTable::pct(ph.mix.fpFraction())});
        }
        table.print(std::cout);
    }
    return 0;
}

int
cmdSynth(const Args &args)
{
    if (args.positional.empty() || args.output.empty())
        fatal("usage: bsyn synth <profile.json> -o <clone.c> "
              "[--cache-dir D] [--no-cache]");
    pipeline::SessionOptions so;
    so.cacheDir = args.effectiveCacheDir();
    pipeline::Session session(so);

    auto prof =
        profile::StatisticalProfile::loadFrom(args.positional[0]);
    synth::SynthesisOptions opts;
    opts.targetInstructions = args.targetInstr;
    opts.seed = args.seed;
    opts.phaseAware = !args.noPhaseSynth;
    bool cached = false;
    auto syn = session.synthesize(prof, opts, &cached);
    writeFile(args.output, syn.cSource);
    if (cached) {
        // Skip the measurement run: a warm synth must compute nothing.
        obs::logf(obs::LogLevel::Info,
                  "[bsyn] wrote %s (from cache): R=%llu, %u "
                  "phase(s), coverage %.1f%%",
                  args.output.c_str(),
                  static_cast<unsigned long long>(syn.reductionFactor),
                  syn.phases, 100.0 * syn.patternStats.coverage());
        return 0;
    }
    obs::logf(obs::LogLevel::Info,
              "[bsyn] wrote %s: R=%llu, %u phase(s), coverage "
              "%.1f%%, clone runs %llu instructions",
              args.output.c_str(),
              static_cast<unsigned long long>(syn.reductionFactor),
              syn.phases, 100.0 * syn.patternStats.coverage(),
              static_cast<unsigned long long>(
                  pipeline::measureInstructions(syn.cSource)));
    return 0;
}

int
cmdCompare(const Args &args)
{
    if (args.positional.size() < 2)
        fatal("usage: bsyn compare <a.c> <b.c>");
    auto report =
        similarity::compareSources(readFile(args.positional[0]),
                                   readFile(args.positional[1]));
    std::printf("winnowing (Moss-style): %.1f%%\n",
                100.0 * report.winnow);
    std::printf("tiling (JPlag-style):   %.1f%%\n",
                100.0 * report.tiling);
    std::printf("verdict: %s\n", report.hidesProprietaryInformation()
                                     ? "no meaningful similarity"
                                     : "similarity detected");
    return report.hidesProprietaryInformation() ? 0 : 1;
}

int
cmdTime(const Args &args)
{
    if (args.positional.empty())
        fatal("usage: bsyn time <prog.c> [-O0..-O3]");
    std::string src = readFile(args.positional[0]);
    std::printf("%-20s %12s %8s %10s\n", "machine", "cycles", "CPI",
                "time(us)");
    for (const auto &machine : sim::paperMachines()) {
        auto t = pipeline::timeOnMachine(src, args.positional[0],
                                         args.level, machine);
        std::printf("%-20s %12llu %8.3f %10.2f\n", machine.name.c_str(),
                    static_cast<unsigned long long>(t.cycles), t.cpi(),
                    machine.timeNs(t.cycles) / 1000.0);
    }
    return 0;
}

int
cmdSuite(const Args &args)
{
    if (!args.positional.empty())
        fatal("usage: bsyn suite [-o <dir>] [--threads N] [--seed S] "
              "[--target-instr N] [--family <spec>] [--gen-count N] "
              "[--shard i/N] [--cache-dir D] [--no-cache] — unexpected "
              "argument '%s'",
              args.positional[0].c_str());

    // --family swaps the batch from the MiBench-analogue suite to
    // generated family instances; everything downstream (cache,
    // sinks, seeds) treats them identically.
    const std::vector<workloads::Workload> fullSuite =
        args.families.empty() ? workloads::mibenchSuite()
                              : generatedSelection(args);

    // --shard: every invocation resolves the full batch identically,
    // then keeps only the workloads hashed onto this shard; the
    // per-workload seeds derive from names, so shard outputs are the
    // exact bytes the unsharded run produces for those workloads.
    serve::ShardedBatch sharded = serve::filterShard(fullSuite, args.shard);
    const std::vector<workloads::Workload> &suite = sharded.workloads;
    if (!args.shard.isAll())
        obs::logf(obs::LogLevel::Info,
                  "[bsyn] shard %s: %zu of %zu workloads",
                  args.shard.str().c_str(), suite.size(), sharded.total);

    pipeline::SessionOptions so;
    // Cap the pool at the batch width so a wide --threads (or a wide
    // machine) never spawns workers that could only idle.
    so.threads = pipeline::resolveSuiteThreads(args.threads, suite.size());
    so.cacheDir = args.effectiveCacheDir();
    so.synthesis.targetInstructions = args.targetInstr;
    so.synthesis.seed = args.seed;
    pipeline::Session session(std::move(so));

    // Sinks: stream clones/profiles to disk as they finish (when -o is
    // given), log progress, and collect for the summary table.
    pipeline::CallbackSink progress(
        [](const pipeline::RunStatus &st, const pipeline::WorkloadRun &r) {
            if (!st.ok)
                return;
            obs::logf(obs::LogLevel::Info,
                      "[bsyn] %-22s R=%llu, coverage %.1f%%%s",
                      st.workload.c_str(),
                      static_cast<unsigned long long>(
                          r.synthetic.reductionFactor),
                      100.0 * r.synthetic.patternStats.coverage(),
                      st.profileCached && st.synthCached ? " (cached)"
                                                         : "");
        });
    pipeline::CollectSink collect;
    std::unique_ptr<pipeline::DirectorySink> disk;
    std::vector<pipeline::RunSink *> sinks{&progress, &collect};
    if (!args.output.empty()) {
        // Created before spending minutes synthesizing.
        disk = std::make_unique<pipeline::DirectorySink>(args.output);
        sinks.push_back(disk.get());
    }
    pipeline::TeeSink tee(sinks);

    unsigned threads =
        pipeline::resolveSuiteThreads(args.threads, suite.size());
    auto t0 = std::chrono::steady_clock::now();
    auto statuses = session.processSuite(suite, tee);
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();

    size_t failed = 0;
    for (const auto &st : statuses) {
        if (!st.ok) {
            ++failed;
            obs::logf(obs::LogLevel::Warn, "[bsyn] FAILED %-22s %s",
                      st.workload.c_str(), st.error.c_str());
        }
    }

    if (!args.output.empty()) {
        // Status artifact with shard provenance: `bsyn merge` checks
        // the suite hash and index cover before reunifying shards.
        serve::makeSuiteStatus(sharded, statuses)
            .saveTo(args.output + "/" + serve::kSuiteStatusFile);
    }

    auto runs = collect.takeRuns();
    TextTable table("suite synthesis summary");
    table.setHeader({"workload", "dyn instr", "R", "coverage"});
    for (const auto &r : runs) {
        table.addRow({r.workload.name(),
                      std::to_string(r.profile.dynamicInstructions),
                      std::to_string(r.synthetic.reductionFactor),
                      TextTable::pct(r.synthetic.patternStats.coverage())});
    }
    table.print(std::cout);

    obs::logf(obs::LogLevel::Info,
              "[bsyn] %zu/%zu workloads synthesized on %u threads "
              "in %.2fs%s%s",
              runs.size(), statuses.size(), threads, secs,
              args.output.empty() ? "" : ", clones written to ",
              args.output.c_str());
    if (session.cache().enabled()) {
        auto cs = session.cacheStats();
        obs::logf(obs::LogLevel::Info,
                  "[bsyn] cache: profiles %llu/%llu from cache, clones "
                  "%llu/%llu from cache",
                  static_cast<unsigned long long>(cs.profileHits),
                  static_cast<unsigned long long>(cs.profileHits +
                                                  cs.profileMisses),
                  static_cast<unsigned long long>(cs.synthHits),
                  static_cast<unsigned long long>(cs.synthHits +
                                                  cs.synthMisses));
    }
    return failed ? 1 : 0;
}

int
cmdList(const Args &args)
{
    if (!args.positional.empty())
        fatal("usage: bsyn list — unexpected argument '%s'",
              args.positional[0].c_str());

    std::printf("suite instances (%zu):\n",
                workloads::mibenchSuite().size());
    std::string last;
    for (const auto &w : workloads::mibenchSuite()) {
        if (w.benchmark != last) {
            std::printf("%s  %s:", last.empty() ? "" : "\n",
                        w.benchmark.c_str());
            last = w.benchmark;
        }
        std::printf(" %s", w.input.c_str());
    }
    std::printf("\n\ngenerator families (instantiate as "
                "family[,knob=value...][,seed=S]):\n");
    for (const auto *family : gen::Registry::global().families()) {
        std::printf("\n  %s — %s\n", family->name().c_str(),
                    family->description().c_str());
        for (const auto &k : family->knobs())
            std::printf("    %-12s default %-8lld range [%lld, %lld]  "
                        "%s\n",
                        k.name.c_str(),
                        static_cast<long long>(k.def),
                        static_cast<long long>(k.min),
                        static_cast<long long>(k.max),
                        k.description.c_str());
        std::printf("    presets: %zu\n", family->presets().size());
    }
    return 0;
}

int
cmdGen(const Args &args)
{
    if (args.positional.size() != 1)
        fatal("usage: bsyn gen <family>[,knob=v...][,seed=S] "
              "[-o prog.c]");
    gen::InstanceSpec spec = gen::parseSpec(args.positional[0]);
    workloads::Workload w = gen::instantiateSpec(spec);
    if (args.output.empty())
        std::fputs(w.source.c_str(), stdout);
    else
        writeFile(args.output, w.source);
    obs::logf(obs::LogLevel::Info,
              "[bsyn] generated %s (%zu bytes)%s%s\n"
              "[bsyn] expected output: %s",
              w.name().c_str(), w.source.size(),
              args.output.empty() ? "" : " -> ", args.output.c_str(),
              w.expectedOutput.c_str());
    return 0;
}

int
cmdFidelity(const Args &args)
{
    if (!args.positional.empty())
        fatal("usage: bsyn fidelity [-o report.json] [--family <spec>] "
              "[--gen-count N] [--only-families] [--seed S] "
              "[--target-instr N] [-O0..-O3] [--no-timing] "
              "[--phase-slices N] [--no-phase-synth] [--threads N] "
              "[--cache-dir D] [--no-cache] — unexpected argument '%s'",
              args.positional[0].c_str());

    // Scope: every Figure-4 instance (unless --only-families), plus
    // every generated instance the --family selection adds.
    auto t0 = std::chrono::steady_clock::now();
    std::vector<workloads::Workload> batch;
    if (!args.onlyFamilies)
        batch = workloads::mibenchSuite();
    auto generated = generatedSelection(args);
    batch.insert(batch.end(), generated.begin(), generated.end());
    double genSecs = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    if (batch.empty())
        fatal("fidelity: no instances to score — --only-families "
              "without any --family <spec> selects nothing");

    // --shard partitions the *resolved* batch (emptiness was judged on
    // the full batch above: a shard that happens to be empty is fine).
    serve::ShardedBatch sharded = serve::filterShard(batch, args.shard);
    batch = sharded.workloads;
    if (!args.shard.isAll())
        obs::logf(obs::LogLevel::Info,
                  "[bsyn] shard %s: %zu of %zu instances",
                  args.shard.str().c_str(), batch.size(), sharded.total);

    pipeline::SessionOptions so;
    so.threads = pipeline::resolveSuiteThreads(args.threads,
                                               batch.size());
    so.cacheDir = args.effectiveCacheDir();
    so.synthesis.targetInstructions = args.targetInstr;
    so.synthesis.seed = args.seed;
    so.synthesis.phaseAware = !args.noPhaseSynth;
    so.profiling.sliceBaseLength = args.phaseSlices;
    pipeline::Session session(std::move(so));

    gen::FidelityOptions fo;
    fo.synthesis = session.options().synthesis;
    if (args.levelSet)
        fo.timingLevel = args.level;
    fo.timing = !args.noTiming;

    auto report = gen::scoreFidelity(session, batch, fo);
    report.generationSecs = genSecs;

    // Sharded runs carry global batch indices so `bsyn merge
    // --fidelity` can restore full-batch instance (and summary
    // accumulation) order.
    for (size_t k = 0; k < report.instances.size(); ++k)
        report.instances[k].index = sharded.indices[k];

    // --results-only drops the bench (wall-clock) half, leaving the
    // deterministic report a merge can reproduce byte-identically.
    Json j = args.resultsOnly ? report.resultsJson() : report.toJson();
    if (!args.shard.isAll()) {
        Json sh = Json::object();
        sh.set("index", Json(static_cast<uint64_t>(args.shard.index)));
        sh.set("count", Json(static_cast<uint64_t>(args.shard.count)));
        sh.set("total", Json(static_cast<uint64_t>(sharded.total)));
        sh.set("suiteHash", Json(sharded.suiteHash));
        j.set("shard", sh);
    }
    std::string text = j.dump(2) + "\n";
    if (args.output.empty())
        std::fputs(text.c_str(), stdout);
    else
        writeFile(args.output, text);

    size_t failed = 0;
    TextTable table("clone fidelity (relative error per instance)");
    table.setHeader({"workload", "mean", "max", "phases",
                     "ph.worst", "worst metric"});
    for (const auto &inst : report.instances) {
        if (!inst.ok) {
            ++failed;
            obs::logf(obs::LogLevel::Warn, "[bsyn] FAILED %-22s %s",
                      inst.workload.c_str(), inst.error.c_str());
            continue;
        }
        const gen::MetricScore *worst = nullptr;
        for (const auto &m : inst.metrics)
            if (!worst || m.error > worst->error)
                worst = &m;
        table.addRow(
            {inst.workload, strprintf("%.3f", inst.meanError),
             strprintf("%.3f", inst.maxError),
             strprintf("%llu/%llu",
                       static_cast<unsigned long long>(
                           inst.originalPhases),
                       static_cast<unsigned long long>(
                           inst.clonePhases)),
             strprintf("%.3f", inst.phaseWorstMixError),
             worst ? worst->metric : "-"});
        if (args.showPhases) {
            for (const auto &ps : inst.phaseScores)
                obs::logf(obs::LogLevel::Info,
                          "[bsyn]   %-22s phase %zu -> clone %zu: mix "
                          "%.3f, miss %.3f, taken %.3f",
                          inst.workload.c_str(), ps.original, ps.clone,
                          ps.mixError, ps.missRateError,
                          ps.takenRateError);
        }
    }
    table.print(std::cout);
    obs::logf(obs::LogLevel::Info,
              "[bsyn] scored %zu/%zu instances in %.2fs%s%s",
              report.instances.size() - failed, report.instances.size(),
              report.totalSecs,
              args.output.empty() ? "" : ", report written to ",
              args.output.c_str());
    return failed ? 1 : 0;
}

int
cmdMerge(const Args &args)
{
    if (args.positional.empty() || args.output.empty())
        fatal("usage: bsyn merge -o <out> <in>... [--fidelity] — "
              "merge per-shard suite directories (or, with --fidelity, "
              "sharded fidelity reports) into the unsharded artifact");

    if (args.mergeFidelity) {
        std::vector<Json> reports;
        for (const auto &path : args.positional)
            reports.push_back(Json::parse(readFile(path)));
        Json merged = serve::mergeFidelityReports(reports);
        writeFile(args.output, merged.dump(2) + "\n");
        obs::logf(obs::LogLevel::Info,
                  "[bsyn] merged %zu fidelity shards (%zu instances) "
                  "into %s",
                  reports.size(), merged.get("instances").size(),
                  args.output.c_str());
        return 0;
    }

    serve::MergeResult res =
        serve::mergeSuiteDirs(args.output, args.positional);
    obs::logf(obs::LogLevel::Info,
              "[bsyn] merged %zu shards into %s: %zu workloads "
              "(%zu failed), %zu artifact files",
              res.shards, args.output.c_str(), res.workloads, res.failed,
              res.files);
    return res.failed ? 1 : 0;
}

/** The worker the signal handler must reach (exactly one per serve
 *  process; requestStop is a single atomic store, so it is safe in a
 *  handler context). */
serve::Worker *gServeWorker = nullptr;

extern "C" void
serveSignalHandler(int)
{
    if (gServeWorker)
        gServeWorker->requestStop();
}

int
cmdServe(const Args &args)
{
    if (args.spool.empty() || !args.positional.empty())
        fatal("usage: bsyn serve --spool <dir> [--cache-dir D] "
              "[--threads N] [--drain] [--max-jobs N] [--poll-ms N] "
              "[--poll-max-ms N] [--reclaim-after SECS]");

    serve::WorkerOptions wo;
    wo.spoolDir = args.spool;
    wo.cacheDir = args.effectiveCacheDir();
    wo.threads = args.threads;
    wo.maxJobs = args.maxJobs;
    wo.drain = args.drain;
    wo.pollMs = static_cast<unsigned>(args.pollMs);
    wo.pollMaxMs = static_cast<unsigned>(args.pollMaxMs);
    wo.reclaimAfterS = args.reclaimAfterS;
    wo.verbose = true;
    serve::Worker worker(wo);

    // SIGINT/SIGTERM become a graceful drain request: the in-flight
    // job still finishes and publishes its status.
    gServeWorker = &worker;
    std::signal(SIGINT, serveSignalHandler);
    std::signal(SIGTERM, serveSignalHandler);

    obs::logf(obs::LogLevel::Info, "[bsyn] serving %s%s%s",
              args.spool.c_str(), wo.cacheDir.empty() ? "" : ", cache ",
              wo.cacheDir.c_str());
    serve::WorkerStats stats = worker.run();
    gServeWorker = nullptr;

    obs::logf(obs::LogLevel::Info,
              "[bsyn] served %llu jobs (%llu ok, %llu failed, "
              "%llu claims lost, %llu reclaimed)",
              static_cast<unsigned long long>(stats.processed),
              static_cast<unsigned long long>(stats.succeeded),
              static_cast<unsigned long long>(stats.failed),
              static_cast<unsigned long long>(stats.lostClaims),
              static_cast<unsigned long long>(stats.reclaimed));
    // Failed *jobs* are the submitters' problem, not the worker's: a
    // worker that survived them exits 0.
    return 0;
}

int
cmdSubmit(const Args &args)
{
    if (args.positional.size() != 2 || args.spool.empty())
        fatal("usage: bsyn submit <profile|synth|fidelity> <workload> "
              "--spool <dir> [--id I] [--seed S] [--target-instr N] "
              "[--timing] [--wait] [--timeout SECS]");

    serve::Spool spool(args.spool);
    serve::Job job;
    job.kind = args.positional[0];
    job.workload = args.positional[1];
    job.seed = args.seed;
    job.targetInstr = args.targetInstr;
    job.timing = args.timing;
    if (!args.jobId.empty()) {
        job.id = args.jobId;
    } else {
        // Derive a readable default id from kind + workload, squashing
        // everything filename-unsafe ("/", "=", ",") to '-'.
        std::string base = job.kind + "-" + job.workload;
        for (char &c : base)
            if (!std::isalnum(static_cast<unsigned char>(c)) &&
                c != '.' && c != '_' && c != '-')
                c = '-';
        job.id = spool.freeId(base);
    }
    spool.submit(job);
    // The id goes to stdout so scripts can capture it; with --wait the
    // status JSON owns stdout instead.
    std::fprintf(args.wait ? stderr : stdout, "%s\n", job.id.c_str());
    if (!args.wait)
        return 0;

    // Fail fast when the result can no longer arrive instead of
    // burning the whole timeout: exit 3 distinguishes "no worker will
    // ever take this" from a job that genuinely failed (1).
    Json status;
    switch (serve::waitForResult(spool, job.id, status,
                                 double(args.timeoutS))) {
    case serve::WaitOutcome::Done:
        break;
    case serve::WaitOutcome::Stopped:
        obs::logf(obs::LogLevel::Error,
                  "bsyn: job '%s' will never run: the spool's stop "
                  "flag is set and the job is still unclaimed",
                  job.id.c_str());
        return 3;
    case serve::WaitOutcome::Vanished:
        obs::logf(obs::LogLevel::Error,
                  "bsyn: job '%s' vanished from the spool without "
                  "a result",
                  job.id.c_str());
        return 3;
    case serve::WaitOutcome::Timeout:
        fatal("submit: timed out after %llus waiting for job '%s'",
              static_cast<unsigned long long>(args.timeoutS),
              job.id.c_str());
    }
    std::string text = status.dump(2) + "\n";
    std::fputs(text.c_str(), stdout);
    return status.get("ok").asBool() ? 0 : 1;
}

int
cmdReplay(const Args &args)
{
    if (!args.positional.empty() || args.mix.empty())
        fatal("usage: bsyn replay --mix <spec> [--schedule <spec>] "
              "[--duration SECS] [--seed S] [--threads N] "
              "[--population N] [--target-instr N] [-o traffic.json] "
              "[--results-only] [--spool <dir> [--workers N] "
              "[--timeout SECS]] [--cache-dir D] [--no-cache]");

    replay::ReplayOptions ro;
    ro.scheduleSpec = args.schedule;
    ro.mixSpec = args.mix;
    ro.durationS = args.durationS;
    ro.seed = args.seed;
    ro.threads = args.threads;
    ro.population = args.population;
    ro.targetInstr = args.targetInstr;
    ro.cacheDir = args.effectiveCacheDir();
    ro.spoolDir = args.spool;
    ro.spoolWorkers = args.spoolWorkers;
    ro.spoolTimeoutS = double(args.timeoutS);

    replay::ReplayReport report = replay::runReplay(ro);

    Json j = args.resultsOnly ? report.resultsJson() : report.toJson();
    std::string text = j.dump(2) + "\n";
    if (args.output.empty())
        std::fputs(text.c_str(), stdout);
    else
        writeFile(args.output, text);

    TextTable table("traffic replay latency");
    table.setHeader(
        {"stage", "count", "p50 ms", "p99 ms", "p99.9 ms", "max ms"});
    for (const auto &s : report.stages) {
        if (s.count == 0)
            continue;
        table.addRow({s.stage, std::to_string(s.count),
                      strprintf("%.2f", s.p50Ms),
                      strprintf("%.2f", s.p99Ms),
                      strprintf("%.2f", s.p999Ms),
                      strprintf("%.2f", s.maxMs)});
    }
    table.print(std::cout);

    obs::logf(obs::LogLevel::Info,
              "[bsyn] %zu arrivals (%llu ok, %llu failed) over %zu "
              "instances in %.2fs: offered %.1f/s, achieved %.1f/s"
              "%s%s",
              report.arrivals.size(),
              static_cast<unsigned long long>(report.okCount),
              static_cast<unsigned long long>(report.failCount),
              report.instanceNames.size(), report.elapsedS,
              report.offeredRate, report.achievedRate,
              args.output.empty() ? "" : ", report written to ",
              args.output.c_str());
    return report.failCount ? 1 : 0;
}

void
usage()
{
    std::fprintf(
        stderr,
        "bsyn — benchmark synthesis for architecture and compiler "
        "exploration\n\n"
        "  bsyn run <prog.c> [-O0..-O3] [--target x86|x86_64|ia64]\n"
        "  bsyn profile <prog.c> -o <profile.json>\n"
        "  bsyn synth <profile.json> -o <clone.c> [--target-instr N] "
        "[--seed S]\n"
        "  bsyn compare <a.c> <b.c>\n"
        "  bsyn time <prog.c> [-O0..-O3]\n"
        "  bsyn suite [-o <dir>] [--threads N] [--seed S] "
        "[--target-instr N]\n"
        "             [--family <spec>] [--gen-count N]\n"
        "  bsyn list\n"
        "  bsyn gen <family>[,knob=v...][,seed=S] [-o prog.c]\n"
        "  bsyn fidelity [-o report.json] [--family <spec>] "
        "[--gen-count N]\n"
        "                [--only-families] [-O0..-O3] [--no-timing]\n"
        "                [--phase-slices N] [--no-phase-synth] "
        "[--phases]\n"
        "  bsyn merge -o <out> <in>... [--fidelity]\n"
        "  bsyn serve --spool <dir> [--cache-dir D] [--threads N] "
        "[--drain]\n"
        "             [--max-jobs N] [--poll-ms N] [--poll-max-ms N]\n"
        "             [--reclaim-after SECS]\n"
        "  bsyn submit <profile|synth|fidelity> <workload> --spool "
        "<dir>\n"
        "              [--id I] [--seed S] [--target-instr N] "
        "[--timing]\n"
        "              [--wait] [--timeout SECS]\n"
        "  bsyn replay --mix <spec> [--schedule <spec>] [--duration "
        "SECS]\n"
        "              [--seed S] [--threads N] [--population N] "
        "[-o out.json]\n"
        "              [--results-only] [--spool <dir> [--workers N]]\n"
        "\n"
        "replay schedules are 'constant,rate=R', "
        "'bursty,rate=R[,on_ms=A,off_ms=B]'\nor "
        "'ramp,rate=R0,end_rate=R1' (all accept jitter=1 for Poisson "
        "arrivals);\na mix is 'spec[:weight][;spec...]' with optional "
        "'@end|' mode switches,\nwhere spec is a family "
        "('fp_kernel,seed=2') or instance ('crc32/small').\n"
        "an idle worker backs off exponentially from --poll-ms to "
        "--poll-max-ms;\n--reclaim-after moves claims older than SECS "
        "back to new/ (crash\nrecovery). submit --wait exits 3 when "
        "the result can no longer arrive.\n"
        "\n"
        "suite and fidelity accept --shard i/N (1-based): the resolved "
        "batch is\npartitioned by a stable hash of each workload name; "
        "bsyn merge\nreassembles per-shard outputs into the unsharded "
        "artifact,\nbyte-identical. fidelity --results-only writes the "
        "deterministic\n(mergeable) half of the report only.\n"
        "profile and fidelity slice the run every --phase-slices "
        "retired\ninstructions (0 disables) and detect program phases; "
        "--phases prints\nthe per-phase detail and --no-phase-synth "
        "clones from the aggregate\nprofile only.\n"
        "a --family <spec> is 'all', 'all-presets' (one instance of "
        "every\npublished preset) or 'name[,knob=value...][,seed=S]' "
        "(repeatable);\nbsyn list prints the registered families and "
        "their knobs.\n"
        "profile/synth/suite/fidelity also accept --cache-dir <dir> "
        "and --no-cache;\nBSYN_CACHE_DIR sets the default cache "
        "directory.\n"
        "every command accepts --trace <file> (write a Chrome "
        "trace-event JSON\nof the run's stage spans; BSYN_TRACE sets "
        "the default), --log-level\ndebug|info|warn|error|silent "
        "(BSYN_LOG) and --quiet (errors only).\n");
}

int
runCommand(const std::string &cmd, const Args &args)
{
    if (cmd == "run")
        return cmdRun(args);
    if (cmd == "profile")
        return cmdProfile(args);
    if (cmd == "synth")
        return cmdSynth(args);
    if (cmd == "compare")
        return cmdCompare(args);
    if (cmd == "time")
        return cmdTime(args);
    if (cmd == "suite")
        return cmdSuite(args);
    if (cmd == "list")
        return cmdList(args);
    if (cmd == "gen")
        return cmdGen(args);
    if (cmd == "fidelity")
        return cmdFidelity(args);
    if (cmd == "merge")
        return cmdMerge(args);
    if (cmd == "serve")
        return cmdServe(args);
    if (cmd == "submit")
        return cmdSubmit(args);
    if (cmd == "replay")
        return cmdReplay(args);
    std::fprintf(stderr, "bsyn: unknown command '%s'\n", cmd.c_str());
    usage();
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }
    std::string cmd = argv[1];

    // Argument errors (unknown flag, bad --target, malformed number)
    // print the usage text and exit 2; failures while carrying out a
    // valid request exit 1.
    Args args;
    try {
        args = parseArgs(argc, argv, 2);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "bsyn: %s\n", e.what());
        usage();
        return 2;
    }

    // --quiet keeps errors; --log-level names any threshold exactly.
    if (args.quiet)
        obs::setLogLevel(obs::LogLevel::Error);
    else if (!args.logLevel.empty())
        obs::setLogLevel(obs::parseLogLevel(args.logLevel));
    if (!args.traceFile.empty())
        obs::Trace::begin(args.traceFile);

    int rc;
    try {
        rc = runCommand(cmd, args);
    } catch (const FatalError &e) {
        obs::logf(obs::LogLevel::Error, "%s", e.what());
        rc = 1;
    }

    // The trace flushes on every exit path, error included — a failed
    // run's trace is the one worth looking at.
    try {
        std::string path = obs::Trace::end();
        if (!path.empty())
            obs::logf(obs::LogLevel::Info, "[bsyn] trace written to %s",
                      path.c_str());
    } catch (const FatalError &e) {
        obs::logf(obs::LogLevel::Error, "%s", e.what());
        if (rc == 0)
            rc = 1;
    }
    return rc;
}
