/**
 * @file
 * bsyn — command-line front end to the framework. Each subcommand is one
 * stage of the paper's Figure 1 flow, operating on files so the stages
 * can run on different sides of an organizational wall:
 *
 *   bsyn run <prog.c> [-O0..-O3] [--target x86|x86_64|ia64]
 *       compile + execute a MiniC program, print its output and counts
 *   bsyn profile <prog.c> -o <profile.json>
 *       profile at -O0 and write the statistical profile
 *   bsyn synth <profile.json> -o <clone.c> [--target-instr N] [--seed S]
 *       generate the synthetic clone from a profile
 *   bsyn compare <a.c> <b.c>
 *       run both plagiarism detectors on a source pair
 *   bsyn time <prog.c> [-O0..-O3]
 *       run the program on all five Table III machine models
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "isa/lowering.hh"
#include "lang/frontend.hh"
#include "pipeline/pipeline.hh"
#include "similarity/report.hh"
#include "support/error.hh"
#include "support/string_util.hh"

using namespace bsyn;

namespace
{

struct Args
{
    std::vector<std::string> positional;
    std::string output;
    std::string target = "x86";
    opt::OptLevel level = opt::OptLevel::O0;
    uint64_t targetInstr = 120000;
    uint64_t seed = 0xb5e9c0de;
};

Args
parseArgs(int argc, char **argv, int first)
{
    Args args;
    for (int i = first; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&](const char *what) {
            if (i + 1 >= argc)
                fatal("missing value after %s", what);
            return std::string(argv[++i]);
        };
        if (a == "-o") {
            args.output = next("-o");
        } else if (a == "--target") {
            args.target = next("--target");
        } else if (a == "--target-instr") {
            args.targetInstr = std::stoull(next("--target-instr"));
        } else if (a == "--seed") {
            args.seed = std::stoull(next("--seed"));
        } else if (a.size() == 3 && a[0] == '-' && a[1] == 'O') {
            args.level = opt::optLevelByName(a);
        } else if (!a.empty() && a[0] == '-') {
            fatal("unknown option '%s'", a.c_str());
        } else {
            args.positional.push_back(a);
        }
    }
    return args;
}

int
cmdRun(const Args &args)
{
    if (args.positional.empty())
        fatal("usage: bsyn run <prog.c> [-O0..-O3] [--target T]");
    std::string src = readFile(args.positional[0]);
    auto stats = pipeline::runSource(src, args.positional[0], args.level,
                                     isa::targetByName(args.target));
    std::fputs(stats.output.c_str(), stdout);
    std::fprintf(stderr,
                 "[bsyn] %llu instructions (%llu loads, %llu stores, "
                 "%llu branches), exit code %d\n",
                 static_cast<unsigned long long>(stats.instructions),
                 static_cast<unsigned long long>(stats.memReads),
                 static_cast<unsigned long long>(stats.memWrites),
                 static_cast<unsigned long long>(stats.branches),
                 stats.exitCode);
    return stats.exitCode;
}

int
cmdProfile(const Args &args)
{
    if (args.positional.empty() || args.output.empty())
        fatal("usage: bsyn profile <prog.c> -o <profile.json>");
    ir::Module m = lang::compile(readFile(args.positional[0]),
                                 args.positional[0]);
    auto prof = profile::profileModule(m);
    prof.saveTo(args.output);
    std::fprintf(stderr,
                 "[bsyn] wrote %s: %llu dynamic instructions, %zu "
                 "blocks, %zu loops\n",
                 args.output.c_str(),
                 static_cast<unsigned long long>(
                     prof.dynamicInstructions),
                 prof.sfgl.blocks.size(), prof.sfgl.loops.size());
    return 0;
}

int
cmdSynth(const Args &args)
{
    if (args.positional.empty() || args.output.empty())
        fatal("usage: bsyn synth <profile.json> -o <clone.c>");
    auto prof =
        profile::StatisticalProfile::loadFrom(args.positional[0]);
    synth::SynthesisOptions opts;
    opts.targetInstructions = args.targetInstr;
    opts.seed = args.seed;
    auto syn = synth::synthesize(prof, opts,
                                 &pipeline::measureInstructions);
    writeFile(args.output, syn.cSource);
    std::fprintf(stderr,
                 "[bsyn] wrote %s: R=%llu, coverage %.1f%%, clone runs "
                 "%llu instructions\n",
                 args.output.c_str(),
                 static_cast<unsigned long long>(syn.reductionFactor),
                 100.0 * syn.patternStats.coverage(),
                 static_cast<unsigned long long>(
                     pipeline::measureInstructions(syn.cSource)));
    return 0;
}

int
cmdCompare(const Args &args)
{
    if (args.positional.size() < 2)
        fatal("usage: bsyn compare <a.c> <b.c>");
    auto report =
        similarity::compareSources(readFile(args.positional[0]),
                                   readFile(args.positional[1]));
    std::printf("winnowing (Moss-style): %.1f%%\n",
                100.0 * report.winnow);
    std::printf("tiling (JPlag-style):   %.1f%%\n",
                100.0 * report.tiling);
    std::printf("verdict: %s\n", report.hidesProprietaryInformation()
                                     ? "no meaningful similarity"
                                     : "similarity detected");
    return report.hidesProprietaryInformation() ? 0 : 1;
}

int
cmdTime(const Args &args)
{
    if (args.positional.empty())
        fatal("usage: bsyn time <prog.c> [-O0..-O3]");
    std::string src = readFile(args.positional[0]);
    std::printf("%-20s %12s %8s %10s\n", "machine", "cycles", "CPI",
                "time(us)");
    for (const auto &machine : sim::paperMachines()) {
        auto t = pipeline::timeOnMachine(src, args.positional[0],
                                         args.level, machine);
        std::printf("%-20s %12llu %8.3f %10.2f\n", machine.name.c_str(),
                    static_cast<unsigned long long>(t.cycles), t.cpi(),
                    machine.timeNs(t.cycles) / 1000.0);
    }
    return 0;
}

void
usage()
{
    std::fprintf(
        stderr,
        "bsyn — benchmark synthesis for architecture and compiler "
        "exploration\n\n"
        "  bsyn run <prog.c> [-O0..-O3] [--target x86|x86_64|ia64]\n"
        "  bsyn profile <prog.c> -o <profile.json>\n"
        "  bsyn synth <profile.json> -o <clone.c> [--target-instr N] "
        "[--seed S]\n"
        "  bsyn compare <a.c> <b.c>\n"
        "  bsyn time <prog.c> [-O0..-O3]\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }
    std::string cmd = argv[1];
    try {
        Args args = parseArgs(argc, argv, 2);
        if (cmd == "run")
            return cmdRun(args);
        if (cmd == "profile")
            return cmdProfile(args);
        if (cmd == "synth")
            return cmdSynth(args);
        if (cmd == "compare")
            return cmdCompare(args);
        if (cmd == "time")
            return cmdTime(args);
        usage();
        return 2;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
