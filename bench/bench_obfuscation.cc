/**
 * @file
 * §V-E — benchmark obfuscation: run both plagiarism detectors
 * (winnowing/Moss and greedy string tiling/JPlag) on every
 * (original, clone) pair. The paper reports that the tools find no
 * similarity; sanity rows compare each original against itself (100%)
 * and against a renamed copy of itself (high — proving the detectors
 * are not blind).
 */

#include "bench_common.hh"

#include "similarity/report.hh"

using namespace bsyn;

int
main()
{
    TextTable table("Obfuscation (paper §V-E): detector scores for "
                    "(original, clone) pairs");
    table.setHeader({"workload", "winnow(Moss)", "tiling(JPlag)",
                     "hidden?"});

    int hidden = 0, total = 0;
    for (const auto &run : bench::processedSuite()) {
        auto report = similarity::compareSources(run.workload.source,
                                                 run.synthetic.cSource);
        bool ok = report.hidesProprietaryInformation();
        hidden += ok;
        ++total;
        table.addRow({run.workload.name(), TextTable::pct(report.winnow),
                      TextTable::pct(report.tiling), ok ? "yes" : "NO"});
    }
    table.print(std::cout);

    // Detector sanity: identical sources must score 100%.
    const auto &first = bench::processedSuite().front();
    auto self = similarity::compareSources(first.workload.source,
                                           first.workload.source);
    std::cout << "\nsanity: original-vs-itself winnow = "
              << TextTable::pct(self.winnow)
              << ", tiling = " << TextTable::pct(self.tiling) << "\n";
    std::cout << "paper check: " << hidden << "/" << total
              << " clones show no meaningful similarity "
                 "(paper: all)\n";
    return 0;
}
