/**
 * @file
 * Shared machinery for the experiment harnesses: one pipeline::Session
 * per binary (thread pool + artifact cache) that processes the whole
 * MiBench-analogue suite, plus helpers to run programs under
 * instrumentation and to fan per-figure measurement loops across the
 * session's workers.
 *
 * Each bench_* binary regenerates one table or figure of the paper
 * (see DESIGN.md's experiment index) and prints it as a text table.
 * Setting BSYN_CACHE_DIR shares profiles and clones across all 15
 * harness binaries — only the first to run pays the synthesis cost.
 */

#ifndef BSYN_BENCH_COMMON_HH
#define BSYN_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "isa/lowering.hh"
#include "lang/frontend.hh"
#include "pipeline/pipeline.hh"
#include "pipeline/run_sink.hh"
#include "pipeline/session.hh"
#include "support/error.hh"
#include "support/statistics.hh"
#include "support/table.hh"

namespace bsyn::bench
{

/** Synthesis configuration used across all experiment harnesses. */
inline synth::SynthesisOptions
benchSynthesisOptions()
{
    auto opts = pipeline::defaultSynthesisOptions();
    opts.targetInstructions = 120000; // the paper's "~10M", scaled
    return opts;
}

/** The one pipeline session shared by a harness binary: one worker per
 *  core, bench synthesis config, and — when BSYN_CACHE_DIR is set — an
 *  artifact cache shared with the other harnesses and the CLI. */
inline pipeline::Session &
benchSession()
{
    static pipeline::Session session([] {
        pipeline::SessionOptions so;
        so.synthesis = benchSynthesisOptions();
        if (const char *env = std::getenv("BSYN_CACHE_DIR"))
            so.cacheDir = env;
        return so;
    }());
    return session;
}

/** Batch-process @p ws on the bench session with a progress line per
 *  finished workload; fatal() on any per-workload failure. */
inline std::vector<pipeline::WorkloadRun>
processBatch(const std::vector<workloads::Workload> &ws)
{
    pipeline::CollectSink collect;
    pipeline::CallbackSink progress(
        [](const pipeline::RunStatus &st, const pipeline::WorkloadRun &) {
            std::fprintf(stderr, "[bench] processed %-22s%s\n",
                         st.workload.c_str(),
                         st.profileCached && st.synthCached
                             ? " (cached)"
                             : "");
        });
    std::vector<pipeline::RunSink *> sinks{&progress, &collect};
    pipeline::TeeSink tee(sinks);
    auto statuses = benchSession().processSuite(ws, tee);
    for (const auto &st : statuses)
        if (!st.ok)
            fatal("bench: workload %s failed: %s", st.workload.c_str(),
                  st.error.c_str());
    return collect.takeRuns();
}

/** Profile + synthesize every suite instance (cached per process). */
inline const std::vector<pipeline::WorkloadRun> &
processedSuite()
{
    static const std::vector<pipeline::WorkloadRun> runs =
        processBatch(workloads::mibenchSuite());
    return runs;
}

/**
 * Evaluate fn(0)..fn(n-1) on the bench session's workers and return
 * the results in index order — the batch API for the per-figure
 * measurement loops (CPI sweeps, per-level recompiles) that previously
 * ran one workload at a time.
 */
template <class T, class Fn>
inline std::vector<T>
parallelMap(size_t n, Fn fn)
{
    std::vector<T> out(n);
    benchSession().parallelFor(n, [&](size_t i) { out[i] = fn(i); });
    return out;
}

/**
 * One representative instance per benchmark (prefers the small input) —
 * used by the heavier timing/cache experiments so each harness finishes
 * in seconds rather than minutes.
 */
inline const std::vector<pipeline::WorkloadRun> &
representativeRuns()
{
    static const std::vector<pipeline::WorkloadRun> runs = [] {
        std::vector<workloads::Workload> picks;
        std::string last;
        for (const auto &w : workloads::mibenchSuite()) {
            if (w.benchmark == last)
                continue;
            // Prefer smallN over largeN when one exists.
            const workloads::Workload *pick = &w;
            for (const auto &cand : workloads::mibenchSuite())
                if (cand.benchmark == w.benchmark &&
                    cand.input.rfind("small", 0) == 0) {
                    pick = &cand;
                    break;
                }
            picks.push_back(*pick);
            last = w.benchmark;
        }
        return processBatch(picks);
    }();
    return runs;
}

/** Run @p source and collect a cache-size sweep of data accesses. */
inline std::vector<double>
cacheHitRateSweep(const std::string &source, opt::OptLevel level)
{
    ir::Module m = lang::compile(source, "sweep");
    opt::optimize(m, level);
    isa::LoweringOptions lo;
    lo.applyFusion = false;
    auto prog = isa::lower(m, isa::targetX86(), lo);

    struct Sweeper : sim::ExecObserver
    {
        sim::CacheSweep sweep{sim::CacheSweep::paperSweep()};
        void onInstruction(int, const isa::MInst &) override {}
        void
        onMemAccess(int, uint64_t addr, uint32_t size, bool,
                    uint64_t) override
        {
            sweep.access(addr, size);
        }
        void onBranch(int, bool) override {}
    } obs;
    sim::execute(prog, &obs);

    std::vector<double> rates;
    for (size_t i = 0; i < obs.sweep.size(); ++i)
        rates.push_back(obs.sweep.at(i).stats().hitRate());
    return rates;
}

/** Run @p source and measure branch-predictor accuracy. */
inline double
branchAccuracy(const std::string &source, opt::OptLevel level,
               const std::string &predictor = "tournament")
{
    ir::Module m = lang::compile(source, "bp");
    opt::optimize(m, level);
    auto prog = isa::lower(m, isa::targetX86());

    struct Bp : sim::ExecObserver
    {
        std::unique_ptr<sim::BranchPredictor> pred;
        void onInstruction(int, const isa::MInst &) override {}
        void onMemAccess(int, uint64_t, uint32_t, bool, uint64_t) override
        {}
        void
        onBranch(int pc, bool taken) override
        {
            pred->branch(static_cast<uint64_t>(pc), taken);
        }
    } obs;
    obs.pred = sim::makePredictor(predictor);
    sim::execute(prog, &obs);
    return obs.pred->stats().accuracy();
}

/** Dynamic instruction count at a level (x86). */
inline uint64_t
dynCount(const std::string &source, opt::OptLevel level)
{
    return pipeline::runSource(source, "count", level, isa::targetX86())
        .instructions;
}

} // namespace bsyn::bench

#endif // BSYN_BENCH_COMMON_HH
