/**
 * @file
 * Shared machinery for the experiment harnesses: process the whole
 * MiBench-analogue suite (profile at -O0, synthesize clones) once per
 * binary, plus helpers to run programs under instrumentation.
 *
 * Each bench_* binary regenerates one table or figure of the paper
 * (see DESIGN.md's experiment index) and prints it as a text table.
 */

#ifndef BSYN_BENCH_COMMON_HH
#define BSYN_BENCH_COMMON_HH

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "isa/lowering.hh"
#include "lang/frontend.hh"
#include "pipeline/pipeline.hh"
#include "support/statistics.hh"
#include "support/table.hh"
#include "support/thread_pool.hh"

namespace bsyn::bench
{

/** Synthesis configuration used across all experiment harnesses. */
inline synth::SynthesisOptions
benchSynthesisOptions()
{
    auto opts = pipeline::defaultSynthesisOptions();
    opts.targetInstructions = 120000; // the paper's "~10M", scaled
    return opts;
}

/** Shared worker pool for the harnesses (one thread per core). */
inline ThreadPool &
benchPool()
{
    static ThreadPool pool;
    return pool;
}

/** Batch options used by the harnesses: bench synthesis config plus a
 *  progress line per finished workload. */
inline pipeline::SuiteOptions
benchSuiteOptions()
{
    pipeline::SuiteOptions so;
    so.synthesis = benchSynthesisOptions();
    so.pool = &benchPool(); // share one set of workers per process
    so.progress = [](const pipeline::WorkloadRun &r) {
        std::fprintf(stderr, "[bench] processed %-22s\n",
                     r.workload.name().c_str());
    };
    return so;
}

/** Profile + synthesize every suite instance (cached per process). */
inline const std::vector<pipeline::WorkloadRun> &
processedSuite()
{
    static const std::vector<pipeline::WorkloadRun> runs =
        pipeline::processSuite(benchSuiteOptions());
    return runs;
}

/**
 * One representative instance per benchmark (prefers the small input) —
 * used by the heavier timing/cache experiments so each harness finishes
 * in seconds rather than minutes.
 */
inline const std::vector<pipeline::WorkloadRun> &
representativeRuns()
{
    static const std::vector<pipeline::WorkloadRun> runs = [] {
        std::vector<workloads::Workload> picks;
        std::string last;
        for (const auto &w : workloads::mibenchSuite()) {
            if (w.benchmark == last)
                continue;
            // Prefer smallN over largeN when one exists.
            const workloads::Workload *pick = &w;
            for (const auto &cand : workloads::mibenchSuite())
                if (cand.benchmark == w.benchmark &&
                    cand.input.rfind("small", 0) == 0) {
                    pick = &cand;
                    break;
                }
            picks.push_back(*pick);
            last = w.benchmark;
        }
        return pipeline::processSuite(picks, benchSuiteOptions());
    }();
    return runs;
}

/** Run @p source and collect a cache-size sweep of data accesses. */
inline std::vector<double>
cacheHitRateSweep(const std::string &source, opt::OptLevel level)
{
    ir::Module m = lang::compile(source, "sweep");
    opt::optimize(m, level);
    isa::LoweringOptions lo;
    lo.applyFusion = false;
    auto prog = isa::lower(m, isa::targetX86(), lo);

    struct Sweeper : sim::ExecObserver
    {
        sim::CacheSweep sweep{sim::CacheSweep::paperSweep()};
        void onInstruction(int, const isa::MInst &) override {}
        void
        onMemAccess(int, uint64_t addr, uint32_t, bool, uint64_t) override
        {
            sweep.access(addr);
        }
        void onBranch(int, bool) override {}
    } obs;
    sim::execute(prog, &obs);

    std::vector<double> rates;
    for (size_t i = 0; i < obs.sweep.size(); ++i)
        rates.push_back(obs.sweep.at(i).stats().hitRate());
    return rates;
}

/** Run @p source and measure branch-predictor accuracy. */
inline double
branchAccuracy(const std::string &source, opt::OptLevel level,
               const std::string &predictor = "tournament")
{
    ir::Module m = lang::compile(source, "bp");
    opt::optimize(m, level);
    auto prog = isa::lower(m, isa::targetX86());

    struct Bp : sim::ExecObserver
    {
        std::unique_ptr<sim::BranchPredictor> pred;
        void onInstruction(int, const isa::MInst &) override {}
        void onMemAccess(int, uint64_t, uint32_t, bool, uint64_t) override
        {}
        void
        onBranch(int pc, bool taken) override
        {
            pred->branch(static_cast<uint64_t>(pc), taken);
        }
    } obs;
    obs.pred = sim::makePredictor(predictor);
    sim::execute(prog, &obs);
    return obs.pred->stats().accuracy();
}

/** Dynamic instruction count at a level (x86). */
inline uint64_t
dynCount(const std::string &source, opt::OptLevel level)
{
    return pipeline::runSource(source, "count", level, isa::targetX86())
        .instructions;
}

} // namespace bsyn::bench

#endif // BSYN_BENCH_COMMON_HH
