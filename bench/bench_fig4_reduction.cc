/**
 * @file
 * Figure 4 — reduction in dynamic instruction count: original workload
 * vs its synthetic clone, per instance plus the average (the paper
 * reports a ~30x mean with per-benchmark factors between 1 and 250).
 */

#include "bench_common.hh"

using namespace bsyn;

int
main()
{
    TextTable table("Figure 4: dynamic instruction count, original "
                    "relative to synthetic");
    table.setHeader({"workload", "original", "synthetic", "reduction",
                     "R chosen"});

    std::vector<double> reductions;
    for (const auto &run : bench::processedSuite()) {
        uint64_t orig = run.profile.dynamicInstructions;
        uint64_t syn =
            pipeline::measureInstructions(run.synthetic.cSource);
        double ratio = syn ? double(orig) / double(syn) : 0.0;
        reductions.push_back(ratio);
        table.addRow({run.workload.name(), TextTable::count(orig),
                      TextTable::count(syn), TextTable::num(ratio, 1) + "x",
                      TextTable::count(run.synthetic.reductionFactor)});
    }
    table.addRow({"AVERAGE", "", "", TextTable::num(mean(reductions), 1)
                  + "x", ""});
    table.print(std::cout);

    std::cout << "\npaper check: mean reduction "
              << TextTable::num(mean(reductions), 1)
              << "x (paper: ~30x, spread 1..250)\n";
    return 0;
}
