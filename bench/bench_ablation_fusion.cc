/**
 * @file
 * Ablation — CISC operand fusion in the lowering layer. Quantifies the
 * dynamic-instruction-count gap between the CISC targets (memory and
 * immediate operands fold into ALU operations) and the load-store EPIC
 * target, which drives the cross-ISA behaviour in Figure 11.
 */

#include "bench_common.hh"

#include "isa/lowering.hh"

using namespace bsyn;

int
main()
{
    TextTable table("Ablation: CISC fusion effect on dynamic "
                    "instruction count (-O0)");
    table.setHeader({"workload", "x86 fused", "x86 unfused", "ia64",
                     "fused/unfused", "fused/ia64"});

    std::vector<double> fusion_gain, isa_gap;
    for (const auto &w : workloads::mibenchSuite()) {
        if (w.input.rfind("small", 0) != 0 && w.input != "large1")
            continue; // keep the harness quick
        ir::Module m = workloads::compileWorkload(w);
        isa::LoweringOptions plain;
        plain.applyFusion = false;
        uint64_t fused =
            sim::execute(isa::lower(m, isa::targetX86())).instructions;
        uint64_t unfused =
            sim::execute(isa::lower(m, isa::targetX86(), plain))
                .instructions;
        uint64_t ia64 =
            sim::execute(isa::lower(m, isa::targetIa64())).instructions;
        fusion_gain.push_back(double(fused) / double(unfused));
        isa_gap.push_back(double(fused) / double(ia64));
        table.addRow({w.name(), TextTable::count(fused),
                      TextTable::count(unfused), TextTable::count(ia64),
                      TextTable::pct(double(fused) / double(unfused)),
                      TextTable::pct(double(fused) / double(ia64))});
    }
    table.print(std::cout);
    std::cout << "\nmean: fusion keeps "
              << TextTable::pct(mean(fusion_gain))
              << " of the unfused count; x86 runs "
              << TextTable::pct(mean(isa_gap))
              << " of the ia64 instruction count\n";
    return 0;
}
