/**
 * @file
 * Table II — pattern-recognition coverage. The paper reports that its
 * statement patterns cover over 95% of the dynamic instructions of every
 * benchmark; this harness prints the coverage the generator achieved per
 * workload, plus statement and compensation counts.
 */

#include "bench_common.hh"

using namespace bsyn;

int
main()
{
    TextTable table("Table II: pattern coverage per workload "
                    "(paper: >95% everywhere)");
    table.setHeader({"workload", "coverage", "statements",
                     "compensation", "reduction R"});

    std::vector<double> coverages;
    for (const auto &run : bench::processedSuite()) {
        const auto &ps = run.synthetic.patternStats;
        coverages.push_back(ps.coverage());
        table.addRow({run.workload.name(), TextTable::pct(ps.coverage()),
                      TextTable::count(ps.statements),
                      TextTable::count(ps.compensationStmts),
                      TextTable::count(run.synthetic.reductionFactor)});
    }
    table.addRow({"AVERAGE", TextTable::pct(mean(coverages)), "", "", ""});
    table.print(std::cout);

    std::cout << "\npaper check: minimum coverage "
              << TextTable::pct(*std::min_element(coverages.begin(),
                                                  coverages.end()))
              << " (target > 95%)\n";
    return 0;
}
