/**
 * @file
 * Figure 9 — branch prediction accuracy under the hybrid (tournament)
 * predictor at -O0 and -O2, originals vs clones. The paper's marker:
 * adpcm is the most predictor-sensitive benchmark, and the synthetic
 * captures that.
 */

#include "bench_common.hh"

using namespace bsyn;

int
main()
{
    TextTable table("Figure 9: branch prediction accuracy "
                    "(tournament predictor)");
    table.setHeader({"benchmark", "ORG -O0", "ORG -O2", "SYN -O0",
                     "SYN -O2"});

    std::string worst_org, worst_syn;
    double worst_org_acc = 2.0, worst_syn_acc = 2.0;
    for (const auto &run : bench::representativeRuns()) {
        double o0 = bench::branchAccuracy(run.workload.source,
                                          opt::OptLevel::O0);
        double o2 = bench::branchAccuracy(run.workload.source,
                                          opt::OptLevel::O2);
        double s0 = bench::branchAccuracy(run.synthetic.cSource,
                                          opt::OptLevel::O0);
        double s2 = bench::branchAccuracy(run.synthetic.cSource,
                                          opt::OptLevel::O2);
        if (o0 < worst_org_acc) {
            worst_org_acc = o0;
            worst_org = run.workload.benchmark;
        }
        if (s0 < worst_syn_acc) {
            worst_syn_acc = s0;
            worst_syn = run.workload.benchmark;
        }
        table.addRow({run.workload.benchmark, TextTable::pct(o0),
                      TextTable::pct(o2), TextTable::pct(s0),
                      TextTable::pct(s2)});
    }
    table.print(std::cout);
    std::cout << "\npaper check: least-predictable original = "
              << worst_org << ", least-predictable synthetic = "
              << worst_syn << " (paper: adpcm for both)\n";
    return 0;
}
