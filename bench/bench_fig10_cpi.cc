/**
 * @file
 * Figure 10 — CPI on the 2-wide out-of-order core while varying the
 * data cache (8/16/32 KB), originals vs clones. Paper markers: fft has
 * the highest CPI (floating point), sha the lowest, and cache-sensitive
 * benchmarks (dijkstra, qsort) respond to the cache size in both
 * versions.
 */

#include "bench_common.hh"

using namespace bsyn;

namespace
{

double
cpiAt(const std::string &source, uint64_t dcache_kb)
{
    auto machine = sim::ptlsimConfig(dcache_kb);
    ir::Module m = lang::compile(source, "cpi");
    opt::optimize(m, opt::OptLevel::O0);
    auto prog = isa::lower(m, machine.isa);
    return sim::simulateTiming(prog, machine.core).cpi();
}

} // namespace

int
main()
{
    TextTable table("Figure 10: CPI on a 2-wide OoO core, 8/16/32 KB D$");
    table.setHeader({"benchmark", "who", "8KB", "16KB", "32KB"});

    std::string max_org = "?", min_org = "?";
    double max_cpi = 0, min_cpi = 1e9;
    for (const auto &run : bench::representativeRuns()) {
        double o8 = cpiAt(run.workload.source, 8);
        double o16 = cpiAt(run.workload.source, 16);
        double o32 = cpiAt(run.workload.source, 32);
        double s8 = cpiAt(run.synthetic.cSource, 8);
        double s16 = cpiAt(run.synthetic.cSource, 16);
        double s32 = cpiAt(run.synthetic.cSource, 32);
        if (o8 > max_cpi) {
            max_cpi = o8;
            max_org = run.workload.benchmark;
        }
        if (o8 < min_cpi) {
            min_cpi = o8;
            min_org = run.workload.benchmark;
        }
        table.addRow({run.workload.benchmark, "ORG",
                      TextTable::num(o8, 3), TextTable::num(o16, 3),
                      TextTable::num(o32, 3)});
        table.addRow({"", "SYN", TextTable::num(s8, 3),
                      TextTable::num(s16, 3), TextTable::num(s32, 3)});
    }
    table.print(std::cout);
    std::cout << "\npaper check: highest-CPI original = " << max_org
              << " (paper: fft), lowest = " << min_org
              << " (paper: sha)\n";
    return 0;
}
