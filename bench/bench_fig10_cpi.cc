/**
 * @file
 * Figure 10 — CPI on the 2-wide out-of-order core while varying the
 * data cache (8/16/32 KB), originals vs clones. Paper markers: fft has
 * the highest CPI (floating point), sha the lowest, and cache-sensitive
 * benchmarks (dijkstra, qsort) respond to the cache size in both
 * versions.
 */

#include "bench_common.hh"

using namespace bsyn;

#include "sim/decoded_program.hh"
#include "sim/timed_core.hh"

namespace
{

/** CPI at each cache size: one compile + lower + decode + timing
 *  prepare per source, then both the decoded program and the prepared
 *  per-PC timing metadata are reused across the whole sweep — only the
 *  configuration under test (the cache geometry) changes per point.
 *  Valid because the sweep varies cache size, not latencies, which is
 *  what the prepared metadata depends on (asserted by
 *  simulateTiming). */
void
cpiSweep(const std::string &source, const uint64_t (&kbs)[3],
         double (&out)[3])
{
    ir::Module m = lang::compile(source, "cpi");
    opt::optimize(m, opt::OptLevel::O0);
    auto prog = isa::lower(m, sim::ptlsimConfig(kbs[0]).isa);
    sim::DecodedProgram decoded(prog);
    sim::TimedProgram timed(decoded, sim::ptlsimConfig(kbs[0]).core);
    for (int k = 0; k < 3; ++k)
        out[k] = sim::simulateTiming(decoded, timed,
                                     sim::ptlsimConfig(kbs[k]).core)
                     .cpi();
}

} // namespace

int
main()
{
    TextTable table("Figure 10: CPI on a 2-wide OoO core, 8/16/32 KB D$");
    table.setHeader({"benchmark", "who", "8KB", "16KB", "32KB"});

    // All six timing simulations per benchmark fan out across the
    // session's workers (batch API); rows print in suite order below.
    struct Row
    {
        double org[3], syn[3];
    };
    const uint64_t kbs[3] = {8, 16, 32};
    const auto &runs = bench::representativeRuns();
    auto rows = bench::parallelMap<Row>(runs.size(), [&](size_t i) {
        Row r;
        cpiSweep(runs[i].workload.source, kbs, r.org);
        cpiSweep(runs[i].synthetic.cSource, kbs, r.syn);
        return r;
    });

    std::string max_org = "?", min_org = "?";
    double max_cpi = 0, min_cpi = 1e9;
    for (size_t i = 0; i < runs.size(); ++i) {
        const Row &r = rows[i];
        if (r.org[0] > max_cpi) {
            max_cpi = r.org[0];
            max_org = runs[i].workload.benchmark;
        }
        if (r.org[0] < min_cpi) {
            min_cpi = r.org[0];
            min_org = runs[i].workload.benchmark;
        }
        table.addRow({runs[i].workload.benchmark, "ORG",
                      TextTable::num(r.org[0], 3),
                      TextTable::num(r.org[1], 3),
                      TextTable::num(r.org[2], 3)});
        table.addRow({"", "SYN", TextTable::num(r.syn[0], 3),
                      TextTable::num(r.syn[1], 3),
                      TextTable::num(r.syn[2], 3)});
    }
    table.print(std::cout);
    std::cout << "\npaper check: highest-CPI original = " << max_org
              << " (paper: fft), lowest = " << min_org
              << " (paper: sha)\n";
    return 0;
}
