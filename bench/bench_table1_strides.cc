/**
 * @file
 * Table I — memory access strides for generating a target miss rate.
 * For each of the nine miss-rate classes, walk a large region with the
 * class's stride and measure the actual miss rate on a 32-byte-line
 * cache; the measured rate must land in the class's band.
 */

#include "bench_common.hh"

#include "profile/memory_profile.hh"
#include "sim/cache.hh"

using namespace bsyn;

int
main()
{
    TextTable table("Table I: stride vs measured miss rate "
                    "(32B lines, 8KB 4-way cache)");
    table.setHeader({"class", "band", "stride(B)", "measured miss",
                     "in band"});

    for (int cls = 0; cls < profile::numMissClasses; ++cls) {
        uint32_t stride = profile::strideForClass(cls);
        sim::CacheConfig cc;
        cc.sizeBytes = 8 * 1024;
        cc.lineBytes = 32;
        cc.associativity = 4;
        sim::Cache cache(cc);

        uint64_t addr = 0;
        const uint64_t region = 1ull << 22;
        for (int i = 0; i < 400000; ++i) {
            cache.access(addr % region);
            addr += stride;
        }
        double measured = cache.stats().missRate();
        double lo = cls == 0 ? 0.0 : 0.0625 + 0.125 * (cls - 1);
        double hi = cls == 8 ? 1.0 : 0.0625 + 0.125 * cls;
        bool ok = measured >= lo - 0.01 && measured <= hi + 0.01;

        table.addRow({std::to_string(cls),
                      TextTable::pct(lo, 2) + "-" + TextTable::pct(hi, 2),
                      std::to_string(stride), TextTable::pct(measured, 2),
                      ok ? "yes" : "NO"});
    }
    table.print(std::cout);
    return 0;
}
