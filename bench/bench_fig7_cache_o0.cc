/**
 * @file
 * Figure 7 — data cache hit rates (1..32 KB, 32 B lines, 4-way) at the
 * -O0 optimization level, original workloads (a) vs synthetic clones
 * (b). The paper's marquee observation: dijkstra is the most cache-
 * sensitive benchmark and its 8 KB knee survives in the clone.
 */

#include "bench_common.hh"

using namespace bsyn;

int
main()
{
    const char *sizes[] = {"1KB", "2KB", "4KB", "8KB", "16KB", "32KB"};

    TextTable table("Figure 7: data cache hit rates at -O0 "
                    "(ORG vs SYN)");
    table.setHeader({"benchmark", "who", sizes[0], sizes[1], sizes[2],
                     sizes[3], sizes[4], sizes[5]});

    for (const auto &run : bench::representativeRuns()) {
        auto org = bench::cacheHitRateSweep(run.workload.source,
                                            opt::OptLevel::O0);
        auto syn = bench::cacheHitRateSweep(run.synthetic.cSource,
                                            opt::OptLevel::O0);
        std::vector<std::string> orow{run.workload.benchmark, "ORG"};
        std::vector<std::string> srow{"", "SYN"};
        for (size_t i = 0; i < org.size(); ++i) {
            orow.push_back(TextTable::pct(org[i]));
            srow.push_back(TextTable::pct(syn[i]));
        }
        table.addRow(orow);
        table.addRow(srow);
    }
    table.print(std::cout);
    std::cout << "\npaper check: dijkstra shows the largest 1KB->32KB "
                 "spread for both ORG and SYN\n";
    return 0;
}
