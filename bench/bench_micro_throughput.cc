/**
 * @file
 * Framework microbenchmarks (google-benchmark): throughput of the
 * interpreter, the cache simulator, the branch predictors, the MiniC
 * compiler and the profiler — the costs that bound every experiment in
 * this repository.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"

#include "gen/registry.hh"
#include "sim/decoded_program.hh"
#include "sim/timed_core.hh"
#include "similarity/report.hh"

using namespace bsyn;

namespace
{

const char *kernelSrc = R"(
uint t[1024];
int main() {
  int i;
  for (i = 0; i < 20000; i++)
    t[i & 1023] = t[(i * 7) & 1023] * 3 + (uint)i;
  printf("%u\n", t[0]);
  return 0;
})";

void
BM_InterpreterThroughput(benchmark::State &state)
{
    // The default execute() path: one decode + the predecoded run.
    ir::Module m = lang::compile(kernelSrc, "k");
    auto prog = isa::lower(m, isa::targetX86());
    uint64_t insts = 0;
    for (auto _ : state) {
        auto stats = sim::execute(prog);
        insts += stats.instructions;
        benchmark::DoNotOptimize(stats.exitCode);
    }
    state.counters["instr/s"] = benchmark::Counter(
        double(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InterpreterThroughput);

void
BM_ReferenceInterpreterThroughput(benchmark::State &state)
{
    // The golden decode-per-step interpreter the differential tests
    // compare against — the baseline every predecoded number beats.
    ir::Module m = lang::compile(kernelSrc, "k");
    auto prog = isa::lower(m, isa::targetX86());
    uint64_t insts = 0;
    for (auto _ : state) {
        auto stats = sim::executeReference(prog);
        insts += stats.instructions;
        benchmark::DoNotOptimize(stats.exitCode);
    }
    state.counters["instr/s"] = benchmark::Counter(
        double(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ReferenceInterpreterThroughput);

void
BM_PredecodedThroughput(benchmark::State &state)
{
    // Steady state for callers that decode once and re-run (timing
    // sweeps, calibration rounds via the Session decode cache).
    ir::Module m = lang::compile(kernelSrc, "k");
    auto prog = isa::lower(m, isa::targetX86());
    sim::DecodedProgram decoded(prog);
    uint64_t insts = 0;
    for (auto _ : state) {
        auto stats = sim::execute(decoded);
        insts += stats.instructions;
        benchmark::DoNotOptimize(stats.exitCode);
    }
    state.counters["instr/s"] = benchmark::Counter(
        double(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PredecodedThroughput);

void
BM_DecodeProgram(benchmark::State &state)
{
    // One-time predecode cost per MachineProgram (amortized over every
    // subsequent run).
    ir::Module m = lang::compile(kernelSrc, "k");
    auto prog = isa::lower(m, isa::targetX86());
    for (auto _ : state) {
        sim::DecodedProgram decoded(prog);
        benchmark::DoNotOptimize(decoded.size());
    }
    state.counters["minst/s"] = benchmark::Counter(
        double(prog.size()) * double(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DecodeProgram);

void
BM_GeneratedPointerChaseThroughput(benchmark::State &state)
{
    // Interpreter throughput on a generated non-MiBench shape: a
    // dependent-load pointer chase (every iteration serializes on the
    // previous load), L1-resident so the number tracks dispatch cost,
    // not simulated-cache behavior.
    auto w = gen::Registry::global().require("pointer_chase").make(
        {{"nodes", 1024}, {"steps", 100000}}, 1);
    ir::Module m = lang::compile(w.source, "pchase");
    auto prog = isa::lower(m, isa::targetX86());
    sim::DecodedProgram decoded(prog);
    uint64_t insts = 0;
    for (auto _ : state) {
        auto stats = sim::execute(decoded);
        insts += stats.instructions;
        benchmark::DoNotOptimize(stats.exitCode);
    }
    state.counters["instr/s"] = benchmark::Counter(
        double(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GeneratedPointerChaseThroughput);

void
BM_InstrumentedThroughput(benchmark::State &state)
{
    // The fused profiling mode: dense per-PC counters + inlined cache,
    // no observer. This is the retired-instruction rate profiling pays
    // once decode is amortized.
    ir::Module m = lang::compile(kernelSrc, "k");
    auto prog = isa::lower(m, isa::targetX86());
    sim::DecodedProgram decoded(prog);
    sim::CacheConfig cache; // the profiler's default 8KB/32B/4-way
    sim::InstrumentedCounters counters;
    uint64_t insts = 0;
    for (auto _ : state) {
        auto stats = sim::executeInstrumented(decoded, cache, counters);
        insts += stats.instructions;
        benchmark::DoNotOptimize(stats.exitCode);
    }
    state.counters["instr/s"] = benchmark::Counter(
        double(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InstrumentedThroughput);

void
BM_InstrumentedSlicedThroughput(benchmark::State &state)
{
    // The fused mode with the v3 slice recorder armed (default slice
    // interval and checkpoint budget). The recorder is one decrement
    // per retired instruction plus a counter snapshot every few
    // thousand, so this must stay within a few percent of the plain
    // instrumented rate above.
    ir::Module m = lang::compile(kernelSrc, "k");
    auto prog = isa::lower(m, isa::targetX86());
    sim::DecodedProgram decoded(prog);
    sim::CacheConfig cache;
    sim::InstrumentedCounters counters;
    sim::SliceOptions slices; // default 4096-instruction base interval
    uint64_t insts = 0;
    for (auto _ : state) {
        sim::SlicedCounters stream;
        auto stats = sim::executeInstrumentedSliced(decoded, cache,
                                                    counters, stream,
                                                    slices);
        insts += stats.instructions;
        benchmark::DoNotOptimize(stats.exitCode);
        benchmark::DoNotOptimize(stream.snapshots.size());
    }
    state.counters["instr/s"] = benchmark::Counter(
        double(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InstrumentedSlicedThroughput);

void
BM_InterpreterWithTimingModel(benchmark::State &state)
{
    ir::Module m = lang::compile(kernelSrc, "k");
    auto prog = isa::lower(m, isa::targetX86());
    auto machine = sim::ptlsimConfig(8);
    uint64_t insts = 0;
    for (auto _ : state) {
        auto t = sim::simulateTiming(prog, machine.core);
        insts += t.instructions;
        benchmark::DoNotOptimize(t.cycles);
    }
    state.counters["instr/s"] = benchmark::Counter(
        double(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InterpreterWithTimingModel);

void
BM_TimingModelDecodedReuse(benchmark::State &state)
{
    // The golden reference timing model over an existing decode: the
    // prepared CoreModel steps on the timed dispatch mode. This is the
    // baseline the specialized-engine numbers below are measured
    // against (and differentially tested against for exactness).
    ir::Module m = lang::compile(kernelSrc, "k");
    auto prog = isa::lower(m, isa::targetX86());
    sim::DecodedProgram decoded(prog);
    auto machine = sim::ptlsimConfig(8);
    uint64_t insts = 0;
    for (auto _ : state) {
        auto t = sim::simulateTiming(decoded, machine.core,
                                     sim::ExecLimits(),
                                     sim::TimingEngine::Reference);
        insts += t.instructions;
        benchmark::DoNotOptimize(t.cycles);
    }
    state.counters["instr/s"] = benchmark::Counter(
        double(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TimingModelDecodedReuse);

void
BM_TimedSpecializedThroughput(benchmark::State &state)
{
    // The specialized timing engine (flat cache/predictor, per-PC
    // metadata prepared once) over a fusion-free decode: isolates the
    // engine speedup from the superblock-fusion dispatch win below.
    ir::Module m = lang::compile(kernelSrc, "k");
    auto prog = isa::lower(m, isa::targetX86());
    sim::DecodeOptions opts;
    opts.superblockFusion = false;
    sim::DecodedProgram decoded(prog, opts);
    auto machine = sim::ptlsimConfig(8);
    sim::TimedProgram timed(decoded, machine.core);
    uint64_t insts = 0;
    for (auto _ : state) {
        auto t = sim::simulateTiming(decoded, timed, machine.core);
        insts += t.instructions;
        benchmark::DoNotOptimize(t.cycles);
    }
    state.counters["instr/s"] = benchmark::Counter(
        double(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TimedSpecializedThroughput);

void
BM_TimedSuperblockThroughput(benchmark::State &state)
{
    // The default timing path: specialized engine + superblock-fused
    // decode, steady state with decode and prepare amortized (Fig 10
    // sweeps, fidelity CPI scoring). CI enforces a floor on this rate.
    ir::Module m = lang::compile(kernelSrc, "k");
    auto prog = isa::lower(m, isa::targetX86());
    sim::DecodedProgram decoded(prog);
    auto machine = sim::ptlsimConfig(8);
    sim::TimedProgram timed(decoded, machine.core);
    uint64_t insts = 0;
    for (auto _ : state) {
        auto t = sim::simulateTiming(decoded, timed, machine.core);
        insts += t.instructions;
        benchmark::DoNotOptimize(t.cycles);
    }
    state.counters["instr/s"] = benchmark::Counter(
        double(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TimedSuperblockThroughput);

void
BM_CacheSimulator(benchmark::State &state)
{
    sim::CacheConfig cfg;
    cfg.sizeBytes = 8 * 1024;
    sim::Cache cache(cfg);
    uint64_t addr = 0;
    uint64_t accesses = 0;
    for (auto _ : state) {
        for (int i = 0; i < 1024; ++i) {
            benchmark::DoNotOptimize(cache.access(addr));
            addr += 12;
        }
        accesses += 1024;
    }
    state.counters["access/s"] = benchmark::Counter(
        double(accesses), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CacheSimulator);

void
BM_TournamentPredictor(benchmark::State &state)
{
    sim::TournamentPredictor pred;
    Rng rng(5);
    uint64_t branches = 0;
    for (auto _ : state) {
        for (int i = 0; i < 1024; ++i)
            pred.branch(static_cast<uint64_t>(i & 63) * 4,
                        rng.nextBool(0.7));
        branches += 1024;
    }
    state.counters["branch/s"] = benchmark::Counter(
        double(branches), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TournamentPredictor);

void
BM_MiniCCompileO2(benchmark::State &state)
{
    const auto &w = workloads::findWorkload("sha/small");
    for (auto _ : state) {
        ir::Module m = lang::compile(w.source, "sha");
        opt::optimize(m, opt::OptLevel::O2);
        auto prog = isa::lower(m, isa::targetX86());
        benchmark::DoNotOptimize(prog.size());
    }
}
BENCHMARK(BM_MiniCCompileO2);

void
BM_ProfileWorkload(benchmark::State &state)
{
    // End-to-end profiling on the default fused instrumented mode
    // (includes the per-call lower + decode + SFGL assembly).
    ir::Module m = lang::compile(kernelSrc, "k");
    for (auto _ : state) {
        auto prof = profile::profileModule(m);
        benchmark::DoNotOptimize(prof.dynamicInstructions);
    }
}
BENCHMARK(BM_ProfileWorkload);

void
BM_ProfileWorkloadReference(benchmark::State &state)
{
    // The golden ExecObserver-based profiler the fused mode is
    // differentially tested against.
    ir::Module m = lang::compile(kernelSrc, "k");
    profile::ProfileOptions opts;
    opts.engine = profile::ProfileEngine::Observer;
    for (auto _ : state) {
        auto prof = profile::profileModule(m, opts);
        benchmark::DoNotOptimize(prof.dynamicInstructions);
    }
}
BENCHMARK(BM_ProfileWorkloadReference);

void
BM_SynthesizeClone(benchmark::State &state)
{
    ir::Module m = lang::compile(kernelSrc, "k");
    auto prof = profile::profileModule(m);
    synth::SynthesisOptions opts;
    opts.targetInstructions = 5000;
    for (auto _ : state) {
        auto syn = synth::synthesize(prof, opts);
        benchmark::DoNotOptimize(syn.cSource.size());
    }
}
BENCHMARK(BM_SynthesizeClone);

void
BM_WinnowSimilarity(benchmark::State &state)
{
    const auto &a = workloads::findWorkload("sha/small");
    const auto &b = workloads::findWorkload("crc32/small");
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            similarity::compareSources(a.source, b.source).winnow);
    }
}
BENCHMARK(BM_WinnowSimilarity);

} // namespace

BENCHMARK_MAIN();
