/**
 * @file
 * Microbenchmarks (google-benchmark) for the shard-and-serve control
 * plane: spool submit/claim/finish round-trips (the per-job protocol
 * overhead a serve worker adds on top of the pipeline work itself) and
 * the shard partition hash (paid once per workload per suite
 * resolution). Both must stay far below the cost of even the smallest
 * profile/synthesis job for the control plane to be "free".
 */

#include <benchmark/benchmark.h>

#include <filesystem>
#include <unistd.h>

#include "serve/shard.hh"
#include "serve/spool.hh"
#include "workloads/suite.hh"

using namespace bsyn;

namespace
{

namespace fs = std::filesystem;

/** Scratch spool root under the system temp dir, wiped per benchmark. */
class ScratchSpool
{
  public:
    ScratchSpool()
        : root_(fs::temp_directory_path() /
                ("bsyn_bench_spool_" + std::to_string(::getpid())))
    {
        fs::remove_all(root_);
    }
    ~ScratchSpool() { fs::remove_all(root_); }
    std::string str() const { return root_.string(); }

  private:
    fs::path root_;
};

void
BM_SpoolSubmitClaimFinish(benchmark::State &state)
{
    ScratchSpool scratch;
    serve::Spool spool(scratch.str());
    Json status = Json::object();
    status.set("ok", Json(true));
    uint64_t n = 0;
    for (auto _ : state) {
        serve::Job job;
        job.id = "job-" + std::to_string(n++);
        job.kind = "synth";
        job.workload = "crc32/small";
        spool.submit(job);
        bool claimed = spool.claim(job.id);
        benchmark::DoNotOptimize(claimed);
        spool.finish(job.id, status);
    }
    state.counters["jobs/s"] =
        benchmark::Counter(double(n), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SpoolSubmitClaimFinish);

void
BM_SpoolPendingScan(benchmark::State &state)
{
    // Worker idle-loop cost: scanning new/ with a backlog waiting.
    ScratchSpool scratch;
    serve::Spool spool(scratch.str());
    for (int i = 0; i < state.range(0); ++i) {
        serve::Job job;
        job.id = "job-" + std::to_string(i);
        job.kind = "profile";
        job.workload = "crc32/small";
        spool.submit(job);
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(spool.pending());
}
BENCHMARK(BM_SpoolPendingScan)->Arg(16)->Arg(256);

void
BM_ShardPartition(benchmark::State &state)
{
    // Full-suite shard resolution: hash every canonical name and
    // filter — what every sharded invocation pays up front.
    auto suite = workloads::mibenchSuite();
    const unsigned count = static_cast<unsigned>(state.range(0));
    uint64_t kept = 0;
    for (auto _ : state) {
        auto batch = serve::filterShard(suite, {1, count});
        kept += batch.workloads.size();
        benchmark::DoNotOptimize(batch.suiteHash.data());
    }
    state.counters["workloads/s"] = benchmark::Counter(
        double(state.iterations() * suite.size()),
        benchmark::Counter::kIsRate);
    benchmark::DoNotOptimize(kept);
}
BENCHMARK(BM_ShardPartition)->Arg(1)->Arg(3)->Arg(16);

} // namespace

BENCHMARK_MAIN();
