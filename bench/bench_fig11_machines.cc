/**
 * @file
 * Figure 11 (and Table III) — normalized execution time across the five
 * modeled machines and four optimization levels, original suite vs the
 * consolidated synthetic clone. Everything is normalized to -O0 on the
 * Pentium 4 3GHz analogue, exactly like the paper. Key shapes to check:
 * Core i7 fastest, Itanium 2 slowest, and -O2/-O3 buying ~25% over -O1
 * on the EPIC machine but little on the out-of-order x86 machines.
 */

#include "bench_common.hh"

#include "synth/consolidate.hh"

using namespace bsyn;

namespace
{

/** Wall-clock time (ns) of the whole set on one machine at one level.
 *  Each program is timed on its own session worker; the per-program
 *  times land in index order and are summed sequentially, so the total
 *  is bit-identical to a serial loop. */
double
suiteTime(const std::vector<std::string> &sources,
          const sim::MachineSpec &machine, opt::OptLevel level)
{
    auto times = bench::parallelMap<double>(sources.size(), [&](size_t i) {
        auto t = pipeline::timeOnMachine(sources[i], "fig11", level,
                                         machine);
        return machine.timeNs(t.cycles);
    });
    double total = 0;
    for (double t : times)
        total += t;
    std::fprintf(stderr, "[fig11] %s %s: %zu programs timed\n",
                 machine.name.c_str(), opt::optLevelName(level),
                 sources.size());
    return total;
}

} // namespace

int
main()
{
    auto machines = sim::paperMachines();

    {
        TextTable t3("Table III: machines used in this study (modeled)");
        t3.setHeader({"machine", "ISA", "core", "regs", "L1D", "L2",
                      "GHz"});
        for (const auto &m : machines) {
            t3.addRow({m.name, m.isa.name,
                       m.core.inOrder ? "in-order" : "out-of-order",
                       std::to_string(m.isa.numRegs),
                       m.core.l1d.describe(), m.core.l2.describe(),
                       TextTable::num(m.freqGHz, 2)});
        }
        t3.print(std::cout);
        std::cout << "\n";
    }

    // Original: one representative instance per benchmark. Synthetic:
    // the consolidated clone of all of them (the paper's Fig 11 setup).
    const auto &runs = bench::representativeRuns();
    std::vector<std::string> org_sources;
    std::vector<profile::StatisticalProfile> profiles;
    for (const auto &r : runs) {
        org_sources.push_back(r.workload.source);
        profiles.push_back(r.profile);
    }
    auto consolidated = synth::consolidate(profiles, "mibench");
    auto opts = bench::benchSynthesisOptions();
    opts.targetInstructions = 400000; // one clone stands in for 13
    auto syn = synth::synthesize(consolidated, opts,
                                 &pipeline::measureInstructions);
    std::vector<std::string> syn_sources{syn.cSource};

    const opt::OptLevel levels[] = {opt::OptLevel::O0, opt::OptLevel::O1,
                                    opt::OptLevel::O2, opt::OptLevel::O3};

    // Normalization base: -O0 on the Pentium 4 3GHz analogue.
    double org_base = suiteTime(org_sources, machines[0], levels[0]);
    double syn_base = suiteTime(syn_sources, machines[0], levels[0]);

    TextTable table("Figure 11: normalized execution time "
                    "(P4-3GHz at -O0 = 1.0)");
    table.setHeader({"machine", "who", "O0", "O1", "O2", "O3"});
    std::vector<double> org_norm, syn_norm;
    for (const auto &m : machines) {
        std::vector<std::string> orow{m.name, "ORG"};
        std::vector<std::string> srow{"", "SYN"};
        for (auto lvl : levels) {
            double o = suiteTime(org_sources, m, lvl) / org_base;
            double s = suiteTime(syn_sources, m, lvl) / syn_base;
            org_norm.push_back(o);
            syn_norm.push_back(s);
            orow.push_back(TextTable::num(o, 3));
            srow.push_back(TextTable::num(s, 3));
        }
        table.addRow(orow);
        table.addRow(srow);
    }
    table.print(std::cout);

    std::cout << "\npaper checks:\n"
              << "  speedup-prediction error (mean) = "
              << TextTable::pct(meanRelativeError(syn_norm, org_norm))
              << " (paper: 7.4% average, <20% worst case)\n"
              << "  correlation(ORG, SYN) = "
              << TextTable::num(pearson(org_norm, syn_norm), 3) << "\n";
    return 0;
}
