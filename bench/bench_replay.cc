/**
 * @file
 * Microbenchmarks (google-benchmark) for the traffic replay engine's
 * hot paths: histogram recording (touched once per arrival per stage
 * from every driver thread — must stay in the low nanoseconds for the
 * measurement not to perturb itself), quantile extraction, arrival
 * generation (the Lambda-inversion bisection, paid once per arrival at
 * startup), and per-arrival mix draws.
 */

#include <benchmark/benchmark.h>

#include "replay/histogram.hh"
#include "replay/mix.hh"
#include "replay/schedule.hh"

using namespace bsyn;

namespace
{

void
BM_HistogramRecord(benchmark::State &state)
{
    replay::LatencyHistogram h;
    uint64_t v = 0;
    for (auto _ : state) {
        h.record(v);
        v = v * 2862933555777941757ull + 3037000493ull; // cheap LCG
    }
    benchmark::DoNotOptimize(h.count());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord)->Threads(1)->Threads(4)->Threads(8);

void
BM_HistogramQuantile(benchmark::State &state)
{
    replay::LatencyHistogram h;
    uint64_t v = 1;
    for (int i = 0; i < 100000; ++i) {
        h.record(v);
        v = v * 2862933555777941757ull + 3037000493ull;
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(h.quantile(0.50));
        benchmark::DoNotOptimize(h.quantile(0.99));
        benchmark::DoNotOptimize(h.quantile(0.999));
    }
}
BENCHMARK(BM_HistogramQuantile);

void
BM_ScheduleArrivals(benchmark::State &state)
{
    // rate * 10s = `range(0)` arrivals per call.
    auto s = replay::Schedule::parse(
        "bursty,rate=" + std::to_string(state.range(0) / 2) +
        ",on_ms=100,off_ms=100,jitter=1");
    uint64_t seed = 1;
    for (auto _ : state) {
        auto offsets = s.arrivals(10.0, seed++);
        benchmark::DoNotOptimize(offsets.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ScheduleArrivals)->Arg(1000)->Arg(10000)->Arg(100000);

void
BM_MixDraw(benchmark::State &state)
{
    auto mix = replay::Mix::parse(
        "pointer_chase:3;fp_kernel@0.5|stream_mix;branch_maze:2", 4);
    uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            mix.draw(42, i, double(i % 1000) / 1000.0));
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MixDraw);

} // namespace

BENCHMARK_MAIN();
