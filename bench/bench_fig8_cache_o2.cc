/**
 * @file
 * Figure 8 — the Figure 7 cache sweep repeated at the -O2 optimization
 * level: optimizing away frame traffic removes the stack's cache-
 * friendly accesses, so hit rates drop relative to Figure 7 while the
 * ORG/SYN correspondence must hold.
 */

#include "bench_common.hh"

using namespace bsyn;

int
main()
{
    const char *sizes[] = {"1KB", "2KB", "4KB", "8KB", "16KB", "32KB"};

    TextTable table("Figure 8: data cache hit rates at -O2 "
                    "(ORG vs SYN)");
    table.setHeader({"benchmark", "who", sizes[0], sizes[1], sizes[2],
                     sizes[3], sizes[4], sizes[5]});

    for (const auto &run : bench::representativeRuns()) {
        auto org = bench::cacheHitRateSweep(run.workload.source,
                                            opt::OptLevel::O2);
        auto syn = bench::cacheHitRateSweep(run.synthetic.cSource,
                                            opt::OptLevel::O2);
        std::vector<std::string> orow{run.workload.benchmark, "ORG"};
        std::vector<std::string> srow{"", "SYN"};
        for (size_t i = 0; i < org.size(); ++i) {
            orow.push_back(TextTable::pct(org[i]));
            srow.push_back(TextTable::pct(syn[i]));
        }
        table.addRow(orow);
        table.addRow(srow);
    }
    table.print(std::cout);
    return 0;
}
