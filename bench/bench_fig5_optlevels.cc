/**
 * @file
 * Figure 5 — normalized dynamic instruction count across compiler
 * optimization levels, original workloads vs synthetic clones (suite
 * averages, normalized to each program's own -O0 count). The paper's
 * headline: both drop by about a third from -O0 to any higher level,
 * and the synthetic tracks the original.
 */

#include "bench_common.hh"

using namespace bsyn;

int
main()
{
    const opt::OptLevel levels[] = {opt::OptLevel::O0, opt::OptLevel::O1,
                                    opt::OptLevel::O2, opt::OptLevel::O3};

    // The eight recompile+execute measurements per workload run on the
    // session's workers (batch API); the suite averages accumulate
    // sequentially in suite order, so output is deterministic.
    struct Row
    {
        double orig[4], syn[4];
    };
    const auto &runs = bench::processedSuite();
    auto rows = bench::parallelMap<Row>(runs.size(), [&](size_t i) {
        Row r;
        uint64_t orig0 = 0, syn0 = 0;
        for (int li = 0; li < 4; ++li) {
            uint64_t o =
                bench::dynCount(runs[i].workload.source, levels[li]);
            uint64_t s =
                bench::dynCount(runs[i].synthetic.cSource, levels[li]);
            if (li == 0) {
                orig0 = o;
                syn0 = s;
            }
            r.orig[li] = double(o) / double(orig0);
            r.syn[li] = double(s) / double(syn0);
        }
        return r;
    });

    std::vector<double> orig_avg(4, 0.0), syn_avg(4, 0.0);
    for (const Row &r : rows) {
        for (int li = 0; li < 4; ++li) {
            orig_avg[static_cast<size_t>(li)] += r.orig[li];
            syn_avg[static_cast<size_t>(li)] += r.syn[li];
        }
    }
    for (auto &v : orig_avg)
        v /= double(rows.size());
    for (auto &v : syn_avg)
        v /= double(rows.size());

    TextTable table("Figure 5: normalized dynamic instruction count "
                    "(suite average, -O0 = 100%)");
    table.setHeader({"level", "original", "synthetic", "|error|"});
    for (int li = 0; li < 4; ++li) {
        size_t i = static_cast<size_t>(li);
        table.addRow({opt::optLevelName(levels[li]),
                      TextTable::pct(orig_avg[i]),
                      TextTable::pct(syn_avg[i]),
                      TextTable::pct(relativeError(syn_avg[i],
                                                   orig_avg[i]))});
    }
    table.print(std::cout);

    std::cout << "\npaper check: O0->O1 drop original "
              << TextTable::pct(1.0 - orig_avg[1]) << ", synthetic "
              << TextTable::pct(1.0 - syn_avg[1])
              << " (paper: about a third for both)\n";
    return 0;
}
