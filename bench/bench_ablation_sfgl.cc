/**
 * @file
 * Ablation — the "L" in SFGL. The paper argues that modeling loops
 * explicitly (rather than generating a flat instruction sequence like
 * prior binary-level synthesizers) makes clones structurally faithful.
 * This harness synthesizes each clone twice — with and without loop
 * information — and compares branch behaviour fidelity.
 */

#include "bench_common.hh"

using namespace bsyn;

int
main()
{
    TextTable table("Ablation: SFGL loop annotation on vs off "
                    "(branch fraction / predictor accuracy fidelity)");
    table.setHeader({"workload", "ORG br%", "SYN+loops br%",
                     "SYN-flat br%", "ORG acc", "SYN+loops acc",
                     "SYN-flat acc"});

    std::vector<double> err_with, err_without;
    for (const auto &run : bench::representativeRuns()) {
        auto opts = bench::benchSynthesisOptions();
        opts.skeleton.useLoopInfo = false;
        auto flat = synth::synthesize(run.profile, opts,
                                      &pipeline::measureInstructions);

        auto mixOf = [](const std::string &src) {
            ir::Module m = lang::compile(src, "m");
            return profile::profileModule(m).mix;
        };
        double org_br = run.profile.mix.branchFraction();
        double with_br = mixOf(run.synthetic.cSource).branchFraction();
        double flat_br = mixOf(flat.cSource).branchFraction();

        double org_acc = bench::branchAccuracy(run.workload.source,
                                               opt::OptLevel::O0);
        double with_acc = bench::branchAccuracy(run.synthetic.cSource,
                                                opt::OptLevel::O0);
        double flat_acc =
            bench::branchAccuracy(flat.cSource, opt::OptLevel::O0);

        err_with.push_back(std::abs(with_br - org_br) +
                           std::abs(with_acc - org_acc));
        err_without.push_back(std::abs(flat_br - org_br) +
                              std::abs(flat_acc - org_acc));

        table.addRow({run.workload.name(), TextTable::pct(org_br),
                      TextTable::pct(with_br), TextTable::pct(flat_br),
                      TextTable::pct(org_acc), TextTable::pct(with_acc),
                      TextTable::pct(flat_acc)});
    }
    table.print(std::cout);
    std::cout << "\nmean combined error: with loops "
              << TextTable::num(mean(err_with), 4) << ", without "
              << TextTable::num(mean(err_without), 4)
              << " (loop info should not be worse)\n";
    return 0;
}
