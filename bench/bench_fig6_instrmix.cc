/**
 * @file
 * Figure 6 — instruction mix (loads / stores / branches / others) at
 * -O0 and -O2, original (ORG) vs synthetic (SYN), per benchmark plus
 * the average. The paper's observation: the load fraction drops and the
 * arithmetic fraction rises at the higher optimization level, for both
 * the originals and the clones.
 */

#include "bench_common.hh"

using namespace bsyn;

namespace
{

profile::InstrMix
mixAt(const std::string &source, opt::OptLevel level)
{
    ir::Module m = lang::compile(source, "mix");
    opt::optimize(m, level);
    return profile::profileModule(m).mix;
}

void
printMixTable(const char *title, opt::OptLevel level)
{
    TextTable table(title);
    table.setHeader({"benchmark", "who", "loads", "stores", "branches",
                     "others"});

    // Recompiling + profiling each original/clone pair fans out across
    // the session's workers (batch API); totals merge in suite order.
    const auto &runs = bench::representativeRuns();
    auto mixes =
        bench::parallelMap<std::pair<profile::InstrMix, profile::InstrMix>>(
            runs.size(), [&](size_t i) {
                return std::make_pair(
                    mixAt(runs[i].workload.source, level),
                    mixAt(runs[i].synthetic.cSource, level));
            });

    profile::InstrMix org_total, syn_total;
    for (size_t i = 0; i < runs.size(); ++i) {
        const auto &org = mixes[i].first;
        const auto &syn = mixes[i].second;
        org_total.merge(org);
        syn_total.merge(syn);
        table.addRow({runs[i].workload.benchmark, "ORG",
                      TextTable::pct(org.loadFraction()),
                      TextTable::pct(org.storeFraction()),
                      TextTable::pct(org.branchFraction()),
                      TextTable::pct(org.otherFraction())});
        table.addRow({"", "SYN", TextTable::pct(syn.loadFraction()),
                      TextTable::pct(syn.storeFraction()),
                      TextTable::pct(syn.branchFraction()),
                      TextTable::pct(syn.otherFraction())});
    }
    table.addRow({"average", "ORG",
                  TextTable::pct(org_total.loadFraction()),
                  TextTable::pct(org_total.storeFraction()),
                  TextTable::pct(org_total.branchFraction()),
                  TextTable::pct(org_total.otherFraction())});
    table.addRow({"", "SYN", TextTable::pct(syn_total.loadFraction()),
                  TextTable::pct(syn_total.storeFraction()),
                  TextTable::pct(syn_total.branchFraction()),
                  TextTable::pct(syn_total.otherFraction())});
    table.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    printMixTable("Figure 6(a): instruction mix at -O0",
                  opt::OptLevel::O0);
    printMixTable("Figure 6(b): instruction mix at -O2",
                  opt::OptLevel::O2);
    std::cout << "paper check: load fraction should drop from (a) to (b) "
                 "for both ORG and SYN\n";
    return 0;
}
